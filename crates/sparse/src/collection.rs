//! Synthetic stand-ins for the paper's test matrices (Table 3).
//!
//! The paper evaluates on 19 SuiteSparse matrices plus the ANISO1/2/3
//! model problems of [21]. The SuiteSparse files are not available in this
//! offline environment, so for each matrix this module provides a
//! **generator reproducing the properties that drive the paper's
//! results**:
//!
//! * symmetry, approximate mean degree and sparsity pattern class
//!   (2D/3D stencil, banded FEM, irregular circuit, ...);
//! * the **weight structure** that determines factor behaviour — e.g.
//!   ECOLOGY's uniform weights that stall un-charged proposition
//!   (Table 4: c_π(5) = 0.00 without charging), ATMOSMODM's dominant
//!   single-axis coupling (c_π ≈ 0.95), STOCF-1465's chain-dominated
//!   weights (c_π = 1.00), TRANSPORT's tied weight tiers that make
//!   charging necessary;
//! * diagonal dominance, so the Fig. 4 solver experiments converge.
//!
//! Sizes are freely scalable (`target_n`); paper-published statistics are
//! recorded in [`PaperStats`] for comparison (the `repro table3` harness
//! prints generated-vs-paper statistics side by side). Real `.mtx` files
//! can be substituted at any time via [`crate::mm`].

use crate::coo::Coo;
use crate::csr::Csr;
use crate::stencil::{self, Stencil7, ANISO1, ANISO2};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Statistics of the original matrix as published in the paper's Table 3.
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// Matrix name as printed in the paper.
    pub name: &'static str,
    /// Whether the matrix is numerically symmetric.
    pub symmetric: bool,
    /// Order N.
    pub n: usize,
    /// Number of nonzeros.
    pub nnz: usize,
    /// Mean degree Δ̄(G).
    pub mean_degree: f64,
}

/// The paper's test-matrix collection (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Collection {
    AfShell8,
    Aniso1,
    Aniso2,
    Aniso3,
    Atmosmodd,
    Atmosmodj,
    Atmosmodl,
    Atmosmodm,
    Bump2911,
    CubeCoupDt0,
    Curlcurl3,
    Curlcurl4,
    Ecology1,
    Ecology2,
    G3Circuit,
    Geo1438,
    Hook1498,
    LongCoupDt0,
    MlGeer,
    Stocf1465,
    Thermal2,
    Transport,
}

impl Collection {
    /// All matrices in Table 3 order.
    pub const ALL: [Collection; 22] = [
        Collection::AfShell8,
        Collection::Aniso1,
        Collection::Aniso2,
        Collection::Aniso3,
        Collection::Atmosmodd,
        Collection::Atmosmodj,
        Collection::Atmosmodl,
        Collection::Atmosmodm,
        Collection::Bump2911,
        Collection::CubeCoupDt0,
        Collection::Curlcurl3,
        Collection::Curlcurl4,
        Collection::Ecology1,
        Collection::Ecology2,
        Collection::G3Circuit,
        Collection::Geo1438,
        Collection::Hook1498,
        Collection::LongCoupDt0,
        Collection::MlGeer,
        Collection::Stocf1465,
        Collection::Thermal2,
        Collection::Transport,
    ];

    /// The subset used in the paper's Fig. 4 convergence study.
    pub const FIG4: [Collection; 8] = [
        Collection::Aniso1,
        Collection::Aniso2,
        Collection::Aniso3,
        Collection::Atmosmodj,
        Collection::Atmosmodl,
        Collection::Atmosmodm,
        Collection::AfShell8,
        Collection::Ecology2,
    ];

    /// Matrix name as printed in the paper.
    pub fn name(self) -> &'static str {
        self.paper_stats().name
    }

    /// Parse a matrix name (case-insensitive, `-`/`_` interchangeable).
    pub fn from_name(s: &str) -> Option<Self> {
        let norm = s.to_lowercase().replace('-', "_");
        Self::ALL
            .into_iter()
            .find(|m| m.name().to_lowercase().replace('-', "_") == norm)
    }

    /// The original matrix statistics from Table 3.
    pub fn paper_stats(self) -> PaperStats {
        use Collection::*;
        let t = |name, symmetric, n, nnz, mean_degree| PaperStats {
            name,
            symmetric,
            n,
            nnz,
            mean_degree,
        };
        match self {
            AfShell8 => t("AF_SHELL8", true, 504_855, 17_588_875, 34.84),
            Aniso1 => t("ANISO1", true, 6_250_000, 56_220_004, 9.00),
            Aniso2 => t("ANISO2", true, 6_250_000, 56_220_004, 9.00),
            Aniso3 => t("ANISO3", true, 6_250_000, 56_220_004, 9.00),
            Atmosmodd => t("ATMOSMODD", false, 1_270_432, 8_814_880, 6.94),
            Atmosmodj => t("ATMOSMODJ", false, 1_270_432, 8_814_880, 6.94),
            Atmosmodl => t("ATMOSMODL", false, 1_489_752, 10_319_760, 6.93),
            Atmosmodm => t("ATMOSMODM", false, 1_489_752, 10_319_760, 6.93),
            Bump2911 => t("BUMP_2911", true, 2_911_419, 127_729_899, 43.87),
            CubeCoupDt0 => t("CUBE_COUP_DT0", true, 2_164_760, 127_206_144, 58.76),
            Curlcurl3 => t("CURLCURL_3", true, 1_219_574, 13_544_618, 11.11),
            Curlcurl4 => t("CURLCURL_4", true, 2_380_515, 26_515_867, 11.14),
            Ecology1 => t("ECOLOGY1", true, 1_000_000, 4_996_000, 5.00),
            Ecology2 => t("ECOLOGY2", true, 999_999, 4_995_991, 5.00),
            G3Circuit => t("G3_CIRCUIT", true, 1_585_478, 7_660_826, 4.83),
            Geo1438 => t("GEO_1438", true, 1_437_960, 63_156_690, 43.92),
            Hook1498 => t("HOOK_1498", true, 1_498_023, 60_917_445, 40.67),
            LongCoupDt0 => t("LONG_COUP_DT0", true, 1_470_152, 87_088_992, 59.24),
            MlGeer => t("ML_GEER", false, 1_504_002, 110_879_972, 73.72),
            Stocf1465 => t("STOCF-1465", true, 1_465_137, 21_005_389, 14.34),
            Thermal2 => t("THERMAL2", true, 1_228_045, 8_580_313, 6.99),
            Transport => t("TRANSPORT", false, 1_602_111, 23_500_731, 14.67),
        }
    }

    /// Generate a stand-in matrix of order approximately `target_n`.
    /// Deterministic for a given `(matrix, target_n)`.
    pub fn generate(self, target_n: usize) -> Csr<f64> {
        use Collection::*;
        match self {
            AfShell8 => af_shell(target_n),
            Aniso1 => stencil::grid2d(sq(target_n), sq(target_n), &ANISO1),
            Aniso2 => stencil::grid2d(sq(target_n), sq(target_n), &ANISO2),
            Aniso3 => stencil::aniso3(sq(target_n), sq(target_n)),
            Atmosmodd => atmosmod_tied(target_n, 11),
            Atmosmodj => atmosmod_tied(target_n, 13),
            Atmosmodl => atmosmod_distinct(target_n),
            Atmosmodm => atmosmod_dominant(target_n),
            Bump2911 => box3d_dominant(target_n, 43, 51.0, 17),
            CubeCoupDt0 => box3d_random(target_n, 58.0, 6.0, 19, false),
            Curlcurl3 => curlcurl(target_n, 23),
            Curlcurl4 => curlcurl(target_n, 29),
            Ecology1 => ecology(target_n, false),
            Ecology2 => ecology(target_n, true),
            G3Circuit => g3_circuit(target_n),
            Geo1438 => box3d_random(target_n, 43.0, 5.0, 31, false),
            Hook1498 => box3d_random(target_n, 40.0, 4.0, 37, false),
            LongCoupDt0 => box3d_dominant(target_n, 58, 67.0, 41),
            MlGeer => box3d_random(target_n, 73.0, 3.0, 43, true),
            Stocf1465 => stocf(target_n),
            Thermal2 => thermal(target_n),
            Transport => transport(target_n),
        }
    }
}

/// Side length for a square 2D grid of ~`n` vertices.
fn sq(n: usize) -> usize {
    (n as f64).sqrt().round().max(2.0) as usize
}

/// Side length for a cubic 3D grid of ~`n` vertices.
fn cb(n: usize) -> usize {
    (n as f64).cbrt().round().max(2.0) as usize
}

/// Turn an off-diagonal weight pattern into a diagonally dominant matrix:
/// off-diagonals are negated, the diagonal is the absolute row sum plus a
/// small shift — SPD for symmetric patterns, and safely solvable by
/// BiCGStab in the Fig. 4 experiments.
pub fn make_diag_dominant(offdiag: &Csr<f64>, shift_frac: f64) -> Csr<f64> {
    let n = offdiag.nrows();
    let mut coo = Coo::new(n, n);
    for (r, c, v) in offdiag.iter() {
        if r != c {
            coo.push(r, c, -v.abs());
        }
    }
    for i in 0..n {
        let s: f64 = offdiag
            .row(i)
            .filter(|&(c, _)| c as usize != i)
            .map(|(_, v)| v.abs())
            .sum();
        coo.push(i as u32, i as u32, s * (1.0 + shift_frac) + 1e-8);
    }
    Csr::from_coo(coo)
}

// ---------------------------------------------------------------------------
// Per-matrix generators
// ---------------------------------------------------------------------------

/// AF_SHELL8 stand-in: a sheet-metal-forming FEM shell — a long 2D strip
/// with radius-2 box coupling (degree ≈ 24). The natural (row-major along
/// the strip) ordering has *weak* x-neighbors so that c_id ≈ 0.01 as in
/// Table 5; strength lies in the transverse/diagonal couplings.
fn af_shell(target_n: usize) -> Csr<f64> {
    let ny = 24usize;
    let nx = (target_n / ny).max(4);
    let mut rng = SmallRng::seed_from_u64(0xAF5);
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize| (y * nx + x) as u32;
    for y in 0..ny {
        for x in 0..nx {
            let v = id(x, y);
            for dy in -3i64..=3 {
                for dx in -2i64..=2 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    // fill upper wedge once; mirror below
                    if dy < 0 || (dy == 0 && dx < 0) {
                        continue;
                    }
                    let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= nx as i64 || yy >= ny as i64 {
                        continue;
                    }
                    // transverse couplings strong, in-strip (dy == 0) weak
                    let aniso = 0.02 + dy.unsigned_abs() as f64;
                    let w = rng.random_range(0.5..1.5) * aniso / (dx * dx + dy * dy) as f64;
                    coo.push_sym(v, id(xx as usize, yy as usize), w);
                }
            }
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.05)
}

/// ATMOSMODD/J stand-in: atmospheric model, 3D 7-point stencil with
/// *exactly tied* strong couplings along x and y and weak z coupling. The
/// ties are what makes un-charged proposition stall on these matrices
/// (Table 4: c_π(5) = 0.02 without charging). Mild upwind nonsymmetry in z
/// reproduces the `symmetric = n` property.
fn atmosmod_tied(target_n: usize, seed: u64) -> Csr<f64> {
    let k = cb(target_n);
    let _ = seed; // D and J are different time steps of the same model
    let s = Stencil7 {
        diag: 0.0,
        x: (-1.0, -1.0),
        y: (-1.0, -1.0),
        z: (-0.19, -0.21),
    };
    let m = stencil::grid3d::<f64>(k, k, k, &s);
    make_diag_dominant(&m, 0.02)
}

/// ATMOSMODL stand-in: same pattern, but distinct coupling magnitudes per
/// axis — no ties, so un-charged proposition works immediately
/// (Table 4: c_π(5) = 0.48 already without charging).
fn atmosmod_distinct(target_n: usize) -> Csr<f64> {
    let k = cb(target_n);
    let s = Stencil7 {
        diag: 0.0,
        x: (-0.6, -0.6),
        y: (-1.0, -1.0),
        z: (-0.39, -0.41),
    };
    make_diag_dominant(&stencil::grid3d::<f64>(k, k, k, &s), 0.02)
}

/// ATMOSMODM stand-in: one dominant coupling axis. The [0,2]-factor
/// captures almost all weight (Table 5: c_π ≈ 0.95) while the natural
/// tridiagonal part holds almost none (c_id = 0.03).
fn atmosmod_dominant(target_n: usize) -> Csr<f64> {
    let k = cb(target_n);
    let s = Stencil7 {
        diag: 0.0,
        x: (-0.15, -0.15),
        y: (-10.0, -10.0),
        z: (-0.19, -0.21),
    };
    make_diag_dominant(&stencil::grid3d::<f64>(k, k, k, &s), 0.02)
}

/// Radius-2 box-stencil 3D matrix with subsampled shell, targeting a mean
/// degree of `target_deg`; weights `u^skew` (larger `skew` = heavier tail,
/// higher factor coverage). `nonsym` adds a mild random asymmetry.
fn box3d_random(target_n: usize, target_deg: f64, skew: f64, seed: u64, nonsym: bool) -> Csr<f64> {
    let k = cb(target_n);
    let n = k * k * k;
    let mut rng = SmallRng::seed_from_u64(seed);
    // 26 inner neighbors always; outer radius-2 shell (98) with probability p
    let p = ((target_deg - 26.0) / 98.0).clamp(0.0, 1.0);
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize, z: usize| ((z * k + y) * k + x) as u32;
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                let v = id(x, y, z);
                for dz in -2i64..=2 {
                    for dy in -2i64..=2 {
                        for dx in -2i64..=2 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            // upper wedge only; mirrored by push_sym
                            if dz < 0 || (dz == 0 && (dy < 0 || (dy == 0 && dx < 0))) {
                                continue;
                            }
                            let inner =
                                dx.abs() <= 1 && dy.abs() <= 1 && dz.abs() <= 1;
                            if !inner && rng.random::<f64>() >= p {
                                continue;
                            }
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0 || yy < 0 || zz < 0 || xx >= k as i64 || yy >= k as i64 || zz >= k as i64 {
                                continue;
                            }
                            let u: f64 = rng.random::<f64>();
                            let w = 0.01 + u.powf(skew);
                            let t = id(xx as usize, yy as usize, zz as usize);
                            if nonsym {
                                let eps = rng.random_range(-0.05..0.05);
                                coo.push(v, t, w * (1.0 + eps));
                                coo.push(t, v, w * (1.0 - eps));
                            } else {
                                coo.push_sym(v, t, w);
                            }
                        }
                    }
                }
            }
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.05)
}

/// High-degree 3D matrix with a single dominant coupling axis carrying
/// weight `strong` vs O(1) for the rest — the BUMP_2911 / LONG_COUP_DT0
/// class where the [0,2]-factor finds long strong chains (c_π ≈ 0.7–0.8).
fn box3d_dominant(target_n: usize, target_deg: usize, strong: f64, seed: u64) -> Csr<f64> {
    let k = cb(target_n);
    let n = k * k * k;
    let mut rng = SmallRng::seed_from_u64(seed);
    let p = ((target_deg as f64 - 26.0) / 98.0).clamp(0.0, 1.0);
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize, z: usize| ((z * k + y) * k + x) as u32;
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                let v = id(x, y, z);
                for dz in -2i64..=2 {
                    for dy in -2i64..=2 {
                        for dx in -2i64..=2 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            if dz < 0 || (dz == 0 && (dy < 0 || (dy == 0 && dx < 0))) {
                                continue;
                            }
                            let inner = dx.abs() <= 1 && dy.abs() <= 1 && dz.abs() <= 1;
                            if !inner && rng.random::<f64>() >= p {
                                continue;
                            }
                            let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                            if xx < 0 || yy < 0 || zz < 0 || xx >= k as i64 || yy >= k as i64 || zz >= k as i64 {
                                continue;
                            }
                            let is_strong_axis = dx == 0 && dy == 0 && dz == 1;
                            let w = if is_strong_axis {
                                strong * rng.random_range(0.95..1.05)
                            } else {
                                rng.random_range(0.2..1.0)
                            };
                            coo.push_sym(v, id(xx as usize, yy as usize, zz as usize), w);
                        }
                    }
                }
            }
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.05)
}

/// CURLCURL stand-in: edge-element curl-curl operator, degree ≈ 11 —
/// 3D 7-point plus radius-2 couplings along each axis, random weights.
fn curlcurl(target_n: usize, seed: u64) -> Csr<f64> {
    let k = cb(target_n);
    let n = k * k * k;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize, z: usize| ((z * k + y) * k + x) as u32;
    let offsets: [(i64, i64, i64); 6] = [
        (1, 0, 0),
        (0, 1, 0),
        (0, 0, 1),
        (2, 0, 0),
        (0, 2, 0),
        (0, 0, 2),
    ];
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                let v = id(x, y, z);
                for &(dx, dy, dz) in &offsets {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx >= k as i64 || yy >= k as i64 || zz >= k as i64 {
                        continue;
                    }
                    let base = if dx + dy + dz == 1 { 1.0 } else { 0.35 };
                    let w = base * rng.random_range(0.3..1.7);
                    coo.push_sym(v, id(xx as usize, yy as usize, zz as usize), w);
                }
            }
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.05)
}

/// ECOLOGY stand-in: landscape-ecology circuit model — a 5-point grid with
/// **all off-diagonal weights equal**. The total weight tie is exactly what
/// makes un-charged parallel proposition crawl (Table 4: c_π(5) = 0.00,
/// maximal only after ~N iterations without charging) while charged
/// configurations converge in a few iterations. `drop_last` removes the
/// last vertex (ECOLOGY2 has N−1 rows in the paper).
fn ecology(target_n: usize, drop_last: bool) -> Csr<f64> {
    let k = sq(target_n);
    let m: Csr<f64> = stencil::grid2d(k, k, &stencil::FIVE_POINT);
    let m = if drop_last {
        // remove the last vertex to mirror ECOLOGY2 = ECOLOGY1 minus one row
        let n = m.nrows() - 1;
        let mut coo = Coo::new(n, n);
        for (r, c, v) in m.iter() {
            if (r as usize) < n && (c as usize) < n {
                coo.push(r, c, v);
            }
        }
        Csr::from_coo(coo)
    } else {
        m
    };
    make_diag_dominant(&m, 0.02)
}

/// G3_CIRCUIT stand-in: circuit simulation — a 5-point grid with random
/// edge deletions (degree ≈ 4.8) and bimodal conductances: 70 % strong
/// (~1) and 30 % weak (~0.1), giving the high [0,2] coverage of Table 5
/// (c_π(5) = 0.70).
fn g3_circuit(target_n: usize) -> Csr<f64> {
    let k = sq(target_n);
    let mut rng = SmallRng::seed_from_u64(0x63);
    let n = k * k;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize| (y * k + x) as u32;
    for y in 0..k {
        for x in 0..k {
            for (dx, dy) in [(1usize, 0usize), (0, 1)] {
                let (xx, yy) = (x + dx, y + dy);
                if xx >= k || yy >= k {
                    continue;
                }
                if rng.random::<f64>() < 0.04 {
                    continue; // deleted edge
                }
                let w = if rng.random::<f64>() < 0.7 {
                    rng.random_range(0.8..1.2)
                } else {
                    rng.random_range(0.05..0.15)
                };
                coo.push_sym(id(x, y), id(xx, yy), w);
            }
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.02)
}

/// STOCF-1465 stand-in: porous-medium flow whose weight is concentrated on
/// vertex-disjoint strong chains (plus weak background coupling), so a
/// [0,2]-factor covers essentially all weight (Table 5: c_π = 1.00 for
/// n ≥ 2). Chains run over a blocked shuffle of the vertex order so a
/// moderate share of chain edges lies on the natural sub-/superdiagonal
/// (c_id ≈ 0.23).
fn stocf(target_n: usize) -> Csr<f64> {
    let n = target_n.max(8);
    let mut rng = SmallRng::seed_from_u64(0x570C);
    // blocked shuffle: blocks of length 1..=2, order shuffled
    let mut blocks: Vec<Vec<u32>> = Vec::new();
    let mut i = 0u32;
    while (i as usize) < n {
        let len = if rng.random::<f64>() < 0.45 { 2 } else { 1 };
        let end = (i + len).min(n as u32);
        blocks.push((i..end).collect());
        i = end;
    }
    for j in (1..blocks.len()).rev() {
        let l = rng.random_range(0..=j);
        blocks.swap(j, l);
    }
    let order: Vec<u32> = blocks.into_iter().flatten().collect();
    let mut coo = Coo::new(n, n);
    // strong chains of mean length ~64 over the shuffled order
    let mut start = 0usize;
    while start < n {
        let len = rng.random_range(16..128).min(n - start);
        for w in order[start..start + len].windows(2) {
            coo.push_sym(w[0], w[1], rng.random_range(50.0..150.0));
        }
        start += len;
    }
    // weak background coupling, degree ~12
    let extra = n * 6;
    for _ in 0..extra {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            coo.push_sym(u, v, rng.random_range(1e-4..1e-2));
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.05)
}

/// THERMAL2 stand-in: unstructured FEM thermal problem — triangulated
/// grid (5-point plus one diagonal, degree ≈ 7) with random conductivities.
fn thermal(target_n: usize) -> Csr<f64> {
    let k = sq(target_n);
    let n = k * k;
    let mut rng = SmallRng::seed_from_u64(0x7E2);
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize| (y * k + x) as u32;
    for y in 0..k {
        for x in 0..k {
            for (dx, dy) in [(1usize, 0usize), (0, 1), (1, 1)] {
                let (xx, yy) = (x + dx, y + dy);
                if xx >= k || yy >= k {
                    continue;
                }
                coo.push_sym(id(x, y), id(xx, yy), rng.random_range(0.1..1.9));
            }
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.02)
}

/// TRANSPORT stand-in: 3D flow/transport FEM with **tiered, tied** weights
/// (strong tier exactly 1.0 along x/y, mid tier 0.5 along z, weak 0.1 at
/// radius 2; degree ≈ 14) and upwind nonsymmetry. The exact ties within
/// each tier require vertex charging for fast maximal factors (Table 4:
/// c_π(5) = 0.24 uncharged vs 0.45 charged).
fn transport(target_n: usize) -> Csr<f64> {
    let k = cb(target_n);
    let n = k * k * k;
    let mut coo = Coo::new(n, n);
    let id = |x: usize, y: usize, z: usize| ((z * k + y) * k + x) as u32;
    let offsets: [(i64, i64, i64, f64); 7] = [
        (1, 0, 0, 1.0),
        (0, 1, 0, 1.0),
        (0, 0, 1, 0.5),
        (2, 0, 0, 0.1),
        (0, 2, 0, 0.1),
        (0, 0, 2, 0.1),
        (1, 1, 0, 0.1),
    ];
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                let v = id(x, y, z);
                for &(dx, dy, dz, w) in &offsets {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx >= k as i64 || yy >= k as i64 || zz >= k as i64 {
                        continue;
                    }
                    let t = id(xx as usize, yy as usize, zz as usize);
                    // upwind: downstream coefficient 20 % weaker, keeping
                    // |a_vt| + |a_tv| tied within a tier
                    coo.push(v, t, w * 1.2);
                    coo.push(t, v, w * 0.8);
                }
            }
        }
    }
    make_diag_dominant(&Csr::from_coo(coo), 0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generate_small() {
        for m in Collection::ALL {
            let a = m.generate(900);
            assert!(a.nrows() >= 500, "{}: n = {}", m.name(), a.nrows());
            assert_eq!(a.nrows(), a.ncols());
            assert!(a.nnz() > a.nrows(), "{} too sparse", m.name());
            // diagonal dominance (solvability for Fig. 4)
            for i in 0..a.nrows() {
                let d = a.get(i, i);
                let off: f64 = a
                    .row(i)
                    .filter(|&(c, _)| c as usize != i)
                    .map(|(_, v)| v.abs())
                    .sum();
                assert!(
                    d + 1e-9 * (1.0 + off) >= off,
                    "{} row {i} not dominant",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn symmetry_matches_paper() {
        for m in Collection::ALL {
            let a = m.generate(700);
            assert_eq!(
                a.is_symmetric(),
                m.paper_stats().symmetric,
                "{} symmetry mismatch",
                m.name()
            );
            assert!(a.is_pattern_symmetric(), "{} pattern", m.name());
        }
    }

    #[test]
    fn mean_degree_in_the_right_class() {
        // Stand-ins should land within ~35 % of the published mean degree
        // for most matrices (boundary effects shrink small grids).
        for m in Collection::ALL {
            let a = m.generate(4000);
            let got = a.mean_degree();
            // Table 3's mean degree is nnz/N, i.e. it includes the diagonal
            // entry, as does `mean_degree()` on our full matrices.
            let want = m.paper_stats().mean_degree;
            let rel = (got - want).abs() / want;
            assert!(
                rel < 0.40,
                "{}: mean degree {got:.2} vs paper {want:.2}",
                m.name()
            );
        }
    }

    #[test]
    fn generators_deterministic() {
        for m in [Collection::G3Circuit, Collection::Stocf1465, Collection::MlGeer] {
            let a = m.generate(500);
            let b = m.generate(500);
            assert_eq!(a, b, "{} not deterministic", m.name());
        }
    }

    #[test]
    fn from_name_roundtrip() {
        for m in Collection::ALL {
            assert_eq!(Collection::from_name(m.name()), Some(m));
        }
        assert_eq!(Collection::from_name("stocf_1465"), Some(Collection::Stocf1465));
        assert_eq!(Collection::from_name("nope"), None);
    }

    #[test]
    fn ecology_weights_uniform() {
        let a = Collection::Ecology1.generate(400);
        let offs: Vec<f64> = a
            .iter()
            .filter(|&(r, c, _)| r != c)
            .map(|(_, _, v)| v)
            .collect();
        assert!(offs.iter().all(|&w| w == offs[0]), "ecology weights must tie");
    }

    #[test]
    fn atmosmodm_has_dominant_axis() {
        let a = Collection::Atmosmodm.generate(1000);
        let strong: f64 = a
            .iter()
            .filter(|&(r, c, v)| r != c && v.abs() > 5.0)
            .map(|(_, _, v)| v.abs())
            .sum();
        let total: f64 = a
            .iter()
            .filter(|&(r, c, _)| r != c)
            .map(|(_, _, v)| v.abs())
            .sum();
        assert!(strong / total > 0.85, "dominant axis fraction {}", strong / total);
    }

    #[test]
    fn ecology2_is_one_smaller() {
        let a = Collection::Ecology1.generate(400);
        let b = Collection::Ecology2.generate(400);
        assert_eq!(a.nrows(), b.nrows() + 1);
    }
}
