//! Compressed sparse row (CSR) format — the working format of all kernels,
//! as in the paper (Table 2 reads "CSR values / col indices / row ptrs").
//!
//! A `Csr` doubles as the adjacency matrix of a weighted graph: entry
//! `a_ij ≠ 0` is the weight of edge `{i, j}`. The preprocessing the paper
//! applies before factor computation (`A' = |A| − diag(|A|)`, Sec. 4) and
//! the symmetrization `A' + A'ᵀ` (Sec. 5.1) are provided as methods.

use crate::coo::Coo;
use crate::scalar::Scalar;

/// Why a CSR matrix could not be constructed from COO input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// A stored value is NaN or infinite — poison for every weight
    /// comparison downstream (top-n selection, weakest-edge minimum).
    NonFinite {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::NonFinite { row, col } => {
                write!(f, "non-finite matrix entry at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// Why a block-diagonal disjoint union of CSR matrices could not be formed.
///
/// Index arithmetic in [`Csr::disjoint_union`] is overflow-checked: a fused
/// batch whose combined shape no longer fits the CSR index types is rejected
/// with a typed error rather than a wrap-around or a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnionError {
    /// The fused column count would exceed `u32::MAX`, the largest column
    /// index representable in [`Csr`]'s `u32` index arrays. `part` is the
    /// index of the matrix whose columns first pushed the running total
    /// over the limit.
    ColumnOverflow {
        /// Index (into the input slice) of the overflowing part.
        part: usize,
    },
    /// The fused row count or entry count overflowed `usize`. `part` is
    /// the index of the matrix that overflowed the running total.
    SizeOverflow {
        /// Index (into the input slice) of the overflowing part.
        part: usize,
    },
}

impl std::fmt::Display for UnionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnionError::ColumnOverflow { part } => write!(
                f,
                "disjoint union: fused column count exceeds u32 index space at part {part}"
            ),
            UnionError::SizeOverflow { part } => write!(
                f,
                "disjoint union: fused row or entry count overflows usize at part {part}"
            ),
        }
    }
}

impl std::error::Error for UnionError {}

/// Sparse matrix in CSR format with 0-based `u32` column indices.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries; length `nrows+1`.
    row_ptr: Vec<usize>,
    /// Column index per entry, ascending within a row.
    col_idx: Vec<u32>,
    /// Value per entry.
    vals: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Build from COO; sorts and sums duplicate entries.
    pub fn from_coo(mut coo: Coo<T>) -> Self {
        coo.sort_and_combine();
        let mut row_ptr = vec![0usize; coo.nrows + 1];
        for &r in &coo.rows {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..coo.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            nrows: coo.nrows,
            ncols: coo.ncols,
            row_ptr,
            col_idx: coo.cols,
            vals: coo.vals,
        }
    }

    /// [`Csr::from_coo`] that rejects non-finite values with a typed
    /// error instead of letting NaN/inf poison downstream comparisons.
    /// The check runs *after* duplicates are summed, so additions that
    /// overflow to infinity are caught too.
    pub fn try_from_coo(coo: Coo<T>) -> Result<Self, CsrError> {
        let m = Self::from_coo(coo);
        for (r, c, v) in m.iter() {
            if !v.is_finite() {
                return Err(CsrError::NonFinite {
                    row: r as usize,
                    col: c as usize,
                });
            }
        }
        Ok(m)
    }

    /// Build directly from raw CSR arrays (validated).
    pub fn from_raw(nrows: usize, ncols: usize, row_ptr: Vec<usize>, col_idx: Vec<u32>, vals: Vec<T>) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length");
        assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len(), "row_ptr total");
        assert_eq!(col_idx.len(), vals.len(), "col/val length");
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr monotone");
        assert!(col_idx.iter().all(|&c| (c as usize) < ncols), "col bounds");
        Self { nrows, ncols, row_ptr, col_idx, vals }
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Block-diagonal disjoint union: stack `parts` along the diagonal,
    /// offsetting each part's column indices by the columns before it.
    /// No cross-block entries are created, so the result is the adjacency
    /// matrix of the disjoint union of the parts' graphs — the fused form
    /// used to batch many small extractions through one kernel pipeline.
    ///
    /// Index arithmetic is overflow-checked; see [`UnionError`].
    pub fn disjoint_union(parts: &[&Csr<T>]) -> Result<Csr<T>, UnionError> {
        let mut nrows = 0usize;
        let mut ncols = 0usize;
        let mut nnz = 0usize;
        for (part, p) in parts.iter().enumerate() {
            nrows = nrows
                .checked_add(p.nrows)
                .ok_or(UnionError::SizeOverflow { part })?;
            nnz = nnz
                .checked_add(p.nnz())
                .ok_or(UnionError::SizeOverflow { part })?;
            ncols = ncols
                .checked_add(p.ncols)
                .ok_or(UnionError::SizeOverflow { part })?;
            if ncols > u32::MAX as usize {
                return Err(UnionError::ColumnOverflow { part });
            }
        }
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        let mut entry_base = 0usize;
        let mut col_off = 0u32;
        for p in parts {
            row_ptr.extend(p.row_ptr[1..].iter().map(|&e| entry_base + e));
            col_idx.extend(p.col_idx.iter().map(|&c| c + col_off));
            vals.extend_from_slice(&p.vals);
            entry_base += p.nnz();
            col_off += p.ncols as u32;
        }
        Ok(Csr { nrows, ncols, row_ptr, col_idx, vals })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Values.
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Mutable values (pattern is fixed).
    pub fn vals_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// The `(col, val)` entries of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (u32, T)> + '_ {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[r.clone()]
            .iter()
            .zip(&self.vals[r])
            .map(|(&c, &v)| (c, v))
    }

    /// The column-index and value slices of row `i`.
    pub fn row_slices(&self, i: usize) -> (&[u32], &[T]) {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[r.clone()], &self.vals[r])
    }

    /// Number of entries in row `i`.
    pub fn row_len(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Mean number of entries per row (the paper's mean degree Δ̄(G)).
    pub fn mean_degree(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Value at `(i, j)`, or zero if not stored. O(log row length).
    pub fn get(&self, i: usize, j: usize) -> T {
        let r = self.row_ptr[i]..self.row_ptr[i + 1];
        match self.col_idx[r.clone()].binary_search(&(j as u32)) {
            Ok(k) => self.vals[r.start + k],
            Err(_) => T::ZERO,
        }
    }

    /// Iterate all `(row, col, val)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).map(move |(c, v)| (i as u32, c, v)))
    }

    /// Convert back to COO (sorted, duplicate-free).
    pub fn to_coo(&self) -> Coo<T> {
        let mut rows = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            rows.extend(std::iter::repeat_n(i as u32, self.row_len(i)));
        }
        Coo::from_triplets(
            self.nrows,
            self.ncols,
            rows,
            self.col_idx.clone(),
            self.vals.clone(),
        )
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        Self::from_coo(self.to_coo().transpose())
    }

    /// Whether the matrix equals its transpose (pattern and values).
    pub fn is_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx && self.vals == t.vals
    }

    /// Whether the sparsity pattern is symmetric (ignoring values).
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// The diagonal as a dense vector.
    pub fn diagonal(&self) -> Vec<T> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// The paper's preprocessing `A' = |A| − diag(|A|)`: absolute values,
    /// diagonal removed (Sec. 4). Self-loops never participate in factors.
    pub fn abs_offdiag(&self) -> Self {
        let mut coo = Coo::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            if r != c && v != T::ZERO {
                coo.push(r, c, v.abs());
            }
        }
        Self::from_coo(coo)
    }

    /// `A + Aᵀ` with values summed — the paper's symmetrization of
    /// non-pattern-symmetric inputs before factor computation (Sec. 5.1).
    pub fn plus_transpose(&self) -> Self {
        assert_eq!(self.nrows, self.ncols, "plus_transpose needs square");
        let mut coo = self.to_coo();
        for (r, c, v) in self.iter() {
            coo.push(c, r, v);
        }
        Self::from_coo(coo)
    }

    /// `max(A, Aᵀ)` entrywise on absolute values — alternative undirected
    /// weight model (keeps each undirected edge's strongest direction).
    pub fn max_transpose_abs(&self) -> Self {
        assert_eq!(self.nrows, self.ncols);
        let a = self.abs_offdiag();
        let t = a.transpose();
        let mut coo = Coo::new(self.nrows, self.ncols);
        for i in 0..self.nrows {
            // merge rows of a and t
            let mut it_a = a.row(i).peekable();
            let mut it_t = t.row(i).peekable();
            loop {
                match (it_a.peek().copied(), it_t.peek().copied()) {
                    (None, None) => break,
                    (Some((c, v)), None) => {
                        coo.push(i as u32, c, v);
                        it_a.next();
                    }
                    (None, Some((c, v))) => {
                        coo.push(i as u32, c, v);
                        it_t.next();
                    }
                    (Some((ca, va)), Some((ct, vt))) => {
                        if ca < ct {
                            coo.push(i as u32, ca, va);
                            it_a.next();
                        } else if ct < ca {
                            coo.push(i as u32, ct, vt);
                            it_t.next();
                        } else {
                            coo.push(i as u32, ca, if va > vt { va } else { vt });
                            it_a.next();
                            it_t.next();
                        }
                    }
                }
            }
        }
        Self::from_coo(coo)
    }

    /// Dense `y = A x` (reference implementation for tests; the parallel
    /// engines live in [`crate::gespmv`]).
    pub fn spmv_ref(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .map(|i| {
                self.row(i)
                    .map(|(c, v)| v * x[c as usize])
                    .fold(T::ZERO, |a, b| a + b)
            })
            .collect()
    }

    /// Symmetric permutation `QᵀAQ` where `perm[new] = old` (i.e. row/col
    /// `perm[k]` of `A` becomes row/col `k` of the result) — used to verify
    /// the linear-forest permutation produces a tridiagonal pattern.
    pub fn permute_sym(&self, perm: &[u32]) -> Self {
        assert_eq!(self.nrows, self.ncols);
        assert_eq!(perm.len(), self.nrows);
        let mut inv = vec![0u32; perm.len()];
        for (new, &old) in perm.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        let mut coo = Coo::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            coo.push(inv[r as usize], inv[c as usize], v);
        }
        Self::from_coo(coo)
    }

    /// Maximum `|i − j|` over stored entries — the bandwidth of the pattern.
    pub fn bandwidth(&self) -> usize {
        self.iter()
            .map(|(r, c, _)| (r as i64 - c as i64).unsigned_abs() as usize)
            .max()
            .unwrap_or(0)
    }

    /// Symmetric diagonal scaling `D^{-1/2} A D^{-1/2}` (unit diagonal for
    /// SPD input) — the standard normalization before comparing weight
    /// structures across matrices.
    pub fn symmetric_diagonal_scaling(&self) -> Self {
        assert_eq!(self.nrows, self.ncols);
        let d: Vec<T> = self
            .diagonal()
            .into_iter()
            .map(|x| {
                let a = x.abs();
                if a == T::ZERO {
                    T::ONE
                } else {
                    T::ONE / a.sqrt()
                }
            })
            .collect();
        let mut out = self.clone();
        let mut k = 0usize;
        for i in 0..self.nrows {
            for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[e] as usize;
                out.vals[k] = self.vals[e] * d[i] * d[j];
                k += 1;
            }
        }
        out
    }

    /// Principal submatrix on the given (sorted, unique) row/column subset.
    /// Returned indices are renumbered 0..keep.len().
    pub fn principal_submatrix(&self, keep: &[u32]) -> Self {
        assert_eq!(self.nrows, self.ncols);
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        let mut renum = vec![u32::MAX; self.ncols];
        for (new, &old) in keep.iter().enumerate() {
            renum[old as usize] = new as u32;
        }
        let mut coo = Coo::new(keep.len(), keep.len());
        for &old in keep {
            for (c, v) in self.row(old as usize) {
                let nc = renum[c as usize];
                if nc != u32::MAX {
                    coo.push(renum[old as usize], nc, v);
                }
            }
        }
        Self::from_coo(coo)
    }

    /// Convert values to another scalar type.
    pub fn cast<U: Scalar>(&self) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

/// Borrowed row-subset view of a [`Csr`]: the rows named by a gather list,
/// presented as a compact matrix of `rows.len()` local rows over a
/// *virtual* nonzero range — the concatenation of the selected rows' entry
/// ranges. Built per iteration by the frontier-compacted factor loop so the
/// generalized-SpMV engines touch only active rows; finalized outputs are
/// scattered back through the gather list by the caller.
///
/// `vrow_ptr` plays the role of `row_ptr` in the virtual range:
/// `vrow_ptr[k+1] - vrow_ptr[k]` is the entry count of global row
/// `rows[k]`, and `vrow_ptr[rows.len()]` is the view's nnz. It is borrowed
/// (not owned) so the factor workspace can reuse its allocation across
/// iterations; build it with [`subset_row_ptr`].
#[derive(Clone, Copy)]
pub struct CsrRowView<'a, T> {
    base: &'a Csr<T>,
    rows: &'a [u32],
    vrow_ptr: &'a [usize],
}

impl<'a, T: Scalar> CsrRowView<'a, T> {
    /// Assemble a view from a gather list and its virtual row pointers
    /// (from [`subset_row_ptr`] over the same `base` and `rows`).
    pub fn new(base: &'a Csr<T>, rows: &'a [u32], vrow_ptr: &'a [usize]) -> Self {
        assert_eq!(vrow_ptr.len(), rows.len() + 1, "vrow_ptr length");
        debug_assert!(rows.iter().all(|&r| (r as usize) < base.nrows()));
        debug_assert!(rows
            .iter()
            .zip(vrow_ptr.windows(2))
            .all(|(&r, w)| w[1] - w[0] == base.row_len(r as usize)));
        Self { base, rows, vrow_ptr }
    }

    /// Number of selected rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Entries covered by the selected rows.
    pub fn nnz(&self) -> usize {
        *self.vrow_ptr.last().unwrap()
    }

    /// The gather list: `rows()[k]` is the global row behind local row `k`.
    pub fn rows(&self) -> &'a [u32] {
        self.rows
    }

    /// Virtual row-pointer array (length `nrows() + 1`).
    pub fn vrow_ptr(&self) -> &'a [usize] {
        self.vrow_ptr
    }

    /// The matrix this view selects rows of.
    pub fn base(&self) -> &'a Csr<T> {
        self.base
    }

    /// Column/value slices of local row `k` (i.e. global row `rows()[k]`).
    pub fn row_slices(&self, k: usize) -> (&'a [u32], &'a [T]) {
        self.base.row_slices(self.rows[k] as usize)
    }
}

/// Build the virtual row-pointer array of a row subset into `out`
/// (cleared first; allocation reused across calls): an exclusive scan of
/// the selected rows' entry counts, with the total appended.
pub fn subset_row_ptr<T: Scalar>(base: &Csr<T>, rows: &[u32], out: &mut Vec<usize>) {
    out.clear();
    out.reserve(rows.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &r in rows {
        acc += base.row_len(r as usize);
        out.push(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr<f64> {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut coo = Coo::new(3, 3);
        for i in 0..3u32 {
            coo.push(i, i, 2.0);
        }
        coo.push_sym(0, 1, -1.0);
        coo.push_sym(1, 2, -1.0);
        Csr::from_coo(coo)
    }

    #[test]
    fn disjoint_union_block_diagonal() {
        let a = small();
        let mut coo = Coo::new(2, 2);
        coo.push_sym(0, 1, 5.0);
        let b = Csr::from_coo(coo);
        let u = Csr::<f64>::disjoint_union(&[&a, &b]).unwrap();
        assert_eq!(u.nrows(), 5);
        assert_eq!(u.ncols(), 5);
        assert_eq!(u.nnz(), a.nnz() + b.nnz());
        // Block A is untouched, block B's indices are shifted by 3.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(u.get(i, j), a.get(i, j));
            }
        }
        assert_eq!(u.get(3, 4), 5.0);
        assert_eq!(u.get(4, 3), 5.0);
        // No cross-block entries.
        assert!(u.iter().all(|(i, j, _)| (i < 3) == (j < 3)));
        assert!(u.is_symmetric());
    }

    #[test]
    fn disjoint_union_empty_and_identity() {
        let a = small();
        let empty = Csr::<f64>::disjoint_union(&[]).unwrap();
        assert_eq!((empty.nrows(), empty.ncols(), empty.nnz()), (0, 0, 0));
        let one = Csr::<f64>::disjoint_union(&[&a]).unwrap();
        assert_eq!(one, a);
        let z = Csr::<f64>::zeros(2, 2);
        let u = Csr::<f64>::disjoint_union(&[&z, &a, &z]).unwrap();
        assert_eq!(u.nrows(), 7);
        assert_eq!(u.nnz(), a.nnz());
        assert_eq!(u.get(2, 3), a.get(0, 1));
    }

    #[test]
    fn disjoint_union_rejects_u32_column_overflow() {
        // Two halves that individually fit but whose fused column count
        // exceeds the u32 column-index space. Zero-entry matrices keep
        // the test cheap: only the index bookkeeping is exercised.
        let big = Csr::<f64>::zeros(0, 3_000_000_000);
        assert_eq!(
            Csr::<f64>::disjoint_union(&[&big, &big]).unwrap_err(),
            UnionError::ColumnOverflow { part: 1 }
        );
    }

    #[test]
    fn from_coo_layout() {
        let m = small();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.row_ptr(), &[0, 2, 5, 7]);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.row_len(1), 3);
        assert!((m.mean_degree() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn try_from_coo_rejects_non_finite() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 1, f64::NAN);
        assert_eq!(
            Csr::try_from_coo(coo).unwrap_err(),
            CsrError::NonFinite { row: 0, col: 1 }
        );
        // overflow created by duplicate summation is caught too
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(1, 0, f64::MAX);
        coo.push(1, 0, f64::MAX);
        assert_eq!(
            Csr::try_from_coo(coo).unwrap_err(),
            CsrError::NonFinite { row: 1, col: 0 }
        );
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 1, 2.5);
        let m = Csr::try_from_coo(coo).unwrap();
        assert_eq!(m.get(0, 1), 2.5);
    }

    #[test]
    fn coo_roundtrip() {
        let m = small();
        let back = Csr::from_coo(m.to_coo());
        assert_eq!(m, back);
    }

    #[test]
    fn symmetry_checks() {
        let m = small();
        assert!(m.is_symmetric());
        assert!(m.is_pattern_symmetric());
        let mut coo = m.to_coo();
        coo.push(0, 2, 9.0);
        let m2 = Csr::from_coo(coo);
        assert!(!m2.is_symmetric());
        assert!(!m2.is_pattern_symmetric());
    }

    #[test]
    fn abs_offdiag_removes_diag() {
        let m = small().abs_offdiag();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn plus_transpose_symmetrizes() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 1, 3.0);
        let m = Csr::from_coo(coo).plus_transpose();
        assert!(m.is_symmetric());
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn max_transpose_takes_stronger_direction() {
        let mut coo = Coo::<f64>::new(2, 2);
        coo.push(0, 1, -3.0);
        coo.push(1, 0, 1.0);
        let m = Csr::from_coo(coo).max_transpose_abs();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn spmv_reference() {
        let m = small();
        let y = m.spmv_ref(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn permutation_reverses() {
        let m = small();
        let p = m.permute_sym(&[2, 1, 0]);
        assert_eq!(p.get(0, 0), 2.0);
        assert_eq!(p.get(0, 1), -1.0);
        assert_eq!(p.get(0, 2), 0.0);
        assert!(p.is_symmetric());
    }

    #[test]
    fn bandwidth_and_diag() {
        let m = small();
        assert_eq!(m.bandwidth(), 1);
        assert_eq!(m.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn diagonal_scaling_normalizes() {
        let m = small().symmetric_diagonal_scaling();
        for i in 0..3 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
        }
        assert!((m.get(0, 1) + 0.5).abs() < 1e-12, "{}", m.get(0, 1));
        assert!(m.is_symmetric());
    }

    #[test]
    fn principal_submatrix_renumbers() {
        let m = small();
        let sub = m.principal_submatrix(&[0, 2]);
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.get(0, 0), 2.0);
        assert_eq!(sub.get(1, 1), 2.0);
        assert_eq!(sub.get(0, 1), 0.0, "0-2 not connected in the path");
        let sub2 = m.principal_submatrix(&[1, 2]);
        assert_eq!(sub2.get(0, 1), -1.0);
    }

    #[test]
    fn cast_f64_f32() {
        let m = small().cast::<f32>();
        assert_eq!(m.get(0, 1), -1.0f32);
    }

    #[test]
    fn zeros_empty() {
        let m = Csr::<f64>::zeros(4, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row_len(3), 0);
        assert_eq!(m.bandwidth(), 0);
    }

    #[test]
    fn row_view_selects_rows() {
        let m = small();
        let rows = [0u32, 2];
        let mut vp = Vec::new();
        subset_row_ptr(&m, &rows, &mut vp);
        assert_eq!(vp, vec![0, 2, 4]);
        let v = CsrRowView::new(&m, &rows, &vp);
        assert_eq!(v.nrows(), 2);
        assert_eq!(v.nnz(), 4);
        let (c0, w0) = v.row_slices(0);
        assert_eq!(c0, m.row_slices(0).0);
        assert_eq!(w0, m.row_slices(0).1);
        let (c1, _) = v.row_slices(1);
        assert_eq!(c1, m.row_slices(2).0);
    }

    #[test]
    fn row_view_empty_subset() {
        let m = small();
        let rows: [u32; 0] = [];
        let mut vp = Vec::new();
        subset_row_ptr(&m, &rows, &mut vp);
        let v = CsrRowView::new(&m, &rows, &vp);
        assert_eq!(v.nrows(), 0);
        assert_eq!(v.nnz(), 0);
    }
}
