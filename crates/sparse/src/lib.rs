//! # lf-sparse — sparse-matrix substrate
//!
//! Sparse matrix formats (COO/CSR), MatrixMarket I/O, stencil and
//! collection generators, and the paper's **generalized sparse
//! matrix–vector product** (Sec. 4.1) with row-parallel and
//! segmented-reduction (SRCSR) engines.
//!
//! A `Csr<T>` doubles as the adjacency matrix of a weighted graph
//! `G = (V, E)` with `ω({i, j}) = a_ij` (paper Sec. 1); the factor and
//! forest algorithms in `lf-core` consume it directly.
//!
//! ```
//! use lf_sparse::prelude::*;
//!
//! // ANISO1 model problem on a 32×32 grid (paper Sec. 5)
//! let a: Csr<f64> = grid2d(32, 32, &ANISO1);
//! assert!(a.is_symmetric());
//! assert_eq!(a.nrows(), 1024);
//! ```

#![warn(missing_docs)]

pub mod collection;
pub mod coo;
pub mod csr;
pub mod gespmv;
pub mod mm;
pub mod random;
pub mod scalar;
pub mod stats;
pub mod stencil;

pub use collection::{Collection, PaperStats};
pub use coo::Coo;
pub use csr::{subset_row_ptr, Csr, CsrError, CsrRowView, UnionError};
pub use mm::{read_coo, read_csr_path, MmError};
pub use gespmv::{
    gespmv, gespmv_rowpar, gespmv_srcsr, gespmv_srcsr_with, gespmv_with, AxpyOps, GeSpmvMatrix,
    GeSpmvOps, SpmvEngine, SrcsrScratch,
};
pub use scalar::Scalar;
pub use stats::{degree_histogram, graph_stats, GraphStats};

/// Commonly used items.
pub mod prelude {
    pub use crate::collection::Collection;
    pub use crate::coo::Coo;
    pub use crate::csr::{Csr, CsrRowView};
    pub use crate::gespmv::{gespmv, AxpyOps, GeSpmvMatrix, GeSpmvOps, SpmvEngine};
    pub use crate::scalar::Scalar;
    pub use crate::stencil::{aniso3, grid2d, grid3d, Stencil7, ANISO1, ANISO2, FIVE_POINT};
}
