//! Coordinate (COO) sparse matrix format.
//!
//! COO is the assembly/interchange format: generators and the
//! MatrixMarket reader produce COO, and the coefficient-extraction kernel
//! of the paper (Sec. 4.3) walks the input matrix in COO with one thread
//! per nonzero.

use crate::scalar::Scalar;

/// A sparse matrix in coordinate format. Triplets may be unsorted and may
/// contain duplicates until [`Coo::sort_and_combine`] is called;
/// [`crate::csr::Csr::from_coo`] performs that normalization itself.
#[derive(Clone, Debug, PartialEq)]
pub struct Coo<T> {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Row indices (0-based).
    pub rows: Vec<u32>,
    /// Column indices (0-based).
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<T>,
}

impl<T: Scalar> Coo<T> {
    /// An empty `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows <= u32::MAX as usize && ncols <= u32::MAX as usize);
        Self {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from triplet vectors.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(rows.len(), cols.len());
        assert_eq!(rows.len(), vals.len());
        debug_assert!(rows.iter().all(|&r| (r as usize) < nrows));
        debug_assert!(cols.iter().all(|&c| (c as usize) < ncols));
        Self {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        }
    }

    /// Number of stored entries (including duplicates, if any).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Append one entry.
    pub fn push(&mut self, row: u32, col: u32, val: T) {
        debug_assert!((row as usize) < self.nrows && (col as usize) < self.ncols);
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Append `val` at `(row, col)` and `(col, row)`; for `row == col`
    /// pushes a single diagonal entry.
    pub fn push_sym(&mut self, row: u32, col: u32, val: T) {
        self.push(row, col, val);
        if row != col {
            self.push(col, row, val);
        }
    }

    /// Sort entries by (row, col) and sum duplicates in place.
    pub fn sort_and_combine(&mut self) {
        let mut idx: Vec<u32> = (0..self.nnz() as u32).collect();
        idx.sort_unstable_by_key(|&i| {
            ((self.rows[i as usize] as u64) << 32) | self.cols[i as usize] as u64
        });
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals: Vec<T> = Vec::with_capacity(self.nnz());
        for &i in &idx {
            let (r, c, v) = (
                self.rows[i as usize],
                self.cols[i as usize],
                self.vals[i as usize],
            );
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("parallel to rows/cols") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Iterate over `(row, col, value)` triplets.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Transpose (swaps row/col indices; O(nnz)).
    pub fn transpose(&self) -> Self {
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            rows: self.cols.clone(),
            cols: self.rows.clone(),
            vals: self.vals.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iter() {
        let mut m = Coo::<f64>::new(3, 3);
        m.push(0, 1, 2.0);
        m.push_sym(1, 2, -1.0);
        m.push_sym(2, 2, 5.0);
        assert_eq!(m.nnz(), 4);
        let trips: Vec<_> = m.iter().collect();
        assert_eq!(trips[0], (0, 1, 2.0));
        assert_eq!(trips[1], (1, 2, -1.0));
        assert_eq!(trips[2], (2, 1, -1.0));
        assert_eq!(trips[3], (2, 2, 5.0));
    }

    #[test]
    fn sort_and_combine_sums_duplicates() {
        let mut m = Coo::<f32>::from_triplets(
            2,
            2,
            vec![1, 0, 1, 0],
            vec![0, 1, 0, 0],
            vec![1.0, 2.0, 3.0, 4.0],
        );
        m.sort_and_combine();
        assert_eq!(m.rows, vec![0, 0, 1]);
        assert_eq!(m.cols, vec![0, 1, 0]);
        assert_eq!(m.vals, vec![4.0, 2.0, 4.0]);
    }

    #[test]
    fn transpose_swaps() {
        let m = Coo::<f64>::from_triplets(2, 3, vec![0, 1], vec![2, 0], vec![1.0, 2.0]);
        let t = m.transpose();
        assert_eq!(t.nrows, 3);
        assert_eq!(t.ncols, 2);
        assert_eq!(t.rows, vec![2, 0]);
        assert_eq!(t.cols, vec![0, 1]);
    }
}
