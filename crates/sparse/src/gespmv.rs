//! Generalized sparse matrix–vector product (Sec. 4.1 of the paper).
//!
//! The paper expresses the edge-proposition kernel of the parallel
//! [0,n]-factor algorithm as an SpMV in which the multiplication `⊗` and
//! reduction `⊕` are replaced by arbitrary operations, with *different
//! types* for matrix values, the per-column state vector, the accumulator
//! and the output — flexibility GraphBLAS lacks (Sec. 2, "GraphBLAS").
//!
//! [`GeSpmvOps`] captures that parameterization. Two execution engines are
//! provided:
//!
//! * [`gespmv_rowpar`] — one logical thread per row (the natural CSR
//!   kernel; efficient for the bounded-degree matrices of Table 3);
//! * [`gespmv_srcsr`] — the paper's **SRCSR** segmented-reduction engine:
//!   the nonzero range is split evenly across workers, each worker reduces
//!   its segment with a sequential reduction-by-key along the rows it
//!   touches, and partial accumulators of rows that straddle segment
//!   boundaries are combined in a fixup pass. This is load-balanced even
//!   for wildly skewed row lengths, which is why the paper uses it.
//!
//! Both engines run over any [`GeSpmvMatrix`] source — the full [`Csr`] or
//! a [`CsrRowView`] row subset. The latter is what the frontier-compacted
//! factor loop uses: only non-full rows are multiplied, and the engine
//! writes one output per *view* row, which the caller scatters back through
//! the view's gather list. Because `⊕` is associative and commutative for
//! every functor used here, the per-row result is independent of how the
//! row set is partitioned, so view and full-matrix runs agree bit for bit
//! on the shared rows.
//!
//! Ordinary `d = Ax + d` is recovered by [`AxpyOps`]; the proposition
//! functor lives in `lf-core`.

use crate::csr::{Csr, CsrRowView};
use crate::scalar::Scalar;
use lf_kernel::{launch, Device, KernelClass, ScatterSlice, Traffic};
use rayon::prelude::*;

/// Operations parameterizing a generalized SpMV over a `Csr<T>`.
///
/// For each row `i`: `out[i] = finalize(i, ⊕_{j ∈ row(i)} multiply(i, j, a_ij))`,
/// where `⊕` = [`GeSpmvOps::combine`] starting from [`GeSpmvOps::identity`].
/// `combine` must be associative with `identity` as neutral element —
/// required for the segmented engine to split rows across workers.
pub trait GeSpmvOps<T: Scalar>: Sync {
    /// Accumulator type (`⊕`-monoid carrier).
    type Acc: Copy + Send + Sync;
    /// Per-row output type.
    type Out: Copy + Send + Sync + Default;

    /// Neutral element of `combine`.
    fn identity(&self) -> Self::Acc;
    /// The `⊗` operation, with access to row and column indices so that
    /// functors can perform indirect lookups into captured state vectors
    /// (confirmed-edge counts, charges, ...), as the paper requires.
    fn multiply(&self, row: u32, col: u32, val: T) -> Self::Acc;
    /// The `⊕` reduction.
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;
    /// Produce the row output from the reduced accumulator.
    fn finalize(&self, row: u32, acc: Self::Acc) -> Self::Out;
    /// Bytes of captured state read per matrix entry + per row, used only
    /// for traffic accounting (Table 2). Default: nothing extra.
    fn extra_read_bytes(&self, _nrows: usize, _nnz: usize) -> u64 {
        0
    }
}

/// Ordinary `out = A·x + d` on a semiring of scalars.
pub struct AxpyOps<'a, T> {
    /// Input vector `x` (length = ncols).
    pub x: &'a [T],
    /// Additive input `d` (length = nrows).
    pub d: &'a [T],
}

impl<'a, T: Scalar> GeSpmvOps<T> for AxpyOps<'a, T> {
    type Acc = T;
    type Out = T;

    #[inline]
    fn identity(&self) -> T {
        T::ZERO
    }
    #[inline]
    fn multiply(&self, _row: u32, col: u32, val: T) -> T {
        val * self.x[col as usize]
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a + b
    }
    #[inline]
    fn finalize(&self, row: u32, acc: T) -> T {
        acc + self.d[row as usize]
    }
    fn extra_read_bytes(&self, nrows: usize, nnz: usize) -> u64 {
        // x gathered per entry, d read per row.
        (nnz * std::mem::size_of::<T>() + nrows * std::mem::size_of::<T>()) as u64
    }
}

/// A matrix source the generalized-SpMV engines can run over: either the
/// full [`Csr`] or a [`CsrRowView`] row subset. Rows are addressed by a
/// *local* index `0..num_rows()`; [`GeSpmvMatrix::global_row`] maps a local
/// row to the global row id handed to the functor (so indirect lookups into
/// captured state vectors keep working under compaction).
pub trait GeSpmvMatrix<T: Scalar>: Sync {
    /// Number of (local) rows; engines write one output per local row.
    fn num_rows(&self) -> usize;
    /// Number of nonzeros covered by this source.
    fn nnz(&self) -> usize;
    /// Global row id of local row `local`.
    fn global_row(&self, local: usize) -> u32;
    /// CSR-style offsets over the local rows (length `num_rows() + 1`);
    /// virtual for a row view, the real row pointer for the full matrix.
    fn vrow_ptr(&self) -> &[usize];
    /// Column indices and values of local row `local`.
    fn row_data(&self, local: usize) -> (&[u32], &[T]);
    /// Extra index bytes read per launch beyond values / column indices /
    /// `vrow_ptr` (a row view reads its gather list too). Traffic only.
    fn index_read_bytes(&self) -> u64 {
        0
    }
}

impl<T: Scalar> GeSpmvMatrix<T> for Csr<T> {
    #[inline]
    fn num_rows(&self) -> usize {
        self.nrows()
    }
    #[inline]
    fn nnz(&self) -> usize {
        Csr::nnz(self)
    }
    #[inline]
    fn global_row(&self, local: usize) -> u32 {
        local as u32
    }
    #[inline]
    fn vrow_ptr(&self) -> &[usize] {
        self.row_ptr()
    }
    #[inline]
    fn row_data(&self, local: usize) -> (&[u32], &[T]) {
        self.row_slices(local)
    }
}

impl<'a, T: Scalar> GeSpmvMatrix<T> for CsrRowView<'a, T> {
    #[inline]
    fn num_rows(&self) -> usize {
        CsrRowView::nrows(self)
    }
    #[inline]
    fn nnz(&self) -> usize {
        CsrRowView::nnz(self)
    }
    #[inline]
    fn global_row(&self, local: usize) -> u32 {
        self.rows()[local]
    }
    #[inline]
    fn vrow_ptr(&self) -> &[usize] {
        CsrRowView::vrow_ptr(self)
    }
    #[inline]
    fn row_data(&self, local: usize) -> (&[u32], &[T]) {
        self.row_slices(local)
    }
    fn index_read_bytes(&self) -> u64 {
        // The gather list mapping local rows to global rows.
        std::mem::size_of_val(self.rows()) as u64
    }
}

fn base_traffic<T: Scalar, M: GeSpmvMatrix<T>, O: GeSpmvOps<T>>(a: &M, ops: &O) -> Traffic {
    Traffic::new()
        .reads::<T>(a.nnz()) // covered values
        .reads::<u32>(a.nnz()) // covered col indices
        .reads::<usize>(a.num_rows() + 1) // (virtual) row ptrs
        .read_bytes(a.index_read_bytes())
        .read_bytes(ops.extra_read_bytes(a.num_rows(), a.nnz()))
        .writes::<O::Out>(a.num_rows())
}

/// Row-parallel generalized SpMV: one logical thread per (local) row.
pub fn gespmv_rowpar<T: Scalar, M: GeSpmvMatrix<T>, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    a: &M,
    ops: &O,
    out: &mut [O::Out],
) {
    assert_eq!(out.len(), a.num_rows(), "output length mismatch");
    if dev.tracer().is_active() {
        dev.tracer().metric("gespmv_rows", a.num_rows() as f64);
    }
    let traffic = base_traffic(a, ops);
    let thr = dev.par_threshold(KernelClass::GeSpmv);
    let row_block = dev.backend().row_block();
    dev.launch(name, traffic, || {
        let body = |k: usize, o: &mut O::Out| {
            let g = a.global_row(k);
            let (cols, vals) = a.row_data(k);
            let mut acc = ops.identity();
            for (&c, &v) in cols.iter().zip(vals) {
                acc = ops.combine(acc, ops.multiply(g, c, v));
            }
            *o = ops.finalize(g, acc);
        };
        match row_block {
            // Cache-blocked traversal (CPU backend): rows are processed in
            // fixed-size blocks so the row-pointer window and the gathered
            // state-vector entries — column-localized for the banded and
            // stencil matrices of Table 3 — stay cache-resident, and the
            // parallel path splits work at block rather than row
            // granularity. Per-row arithmetic is identical, so results are
            // bit-for-bit the same as the unblocked traversal.
            Some(b) if a.num_rows() > b => {
                if a.num_rows() < thr {
                    for (bi, chunk) in out.chunks_mut(b).enumerate() {
                        let base = bi * b;
                        for (j, o) in chunk.iter_mut().enumerate() {
                            body(base + j, o);
                        }
                    }
                } else {
                    out.par_chunks_mut(b).enumerate().for_each(|(bi, chunk)| {
                        let base = bi * b;
                        for (j, o) in chunk.iter_mut().enumerate() {
                            body(base + j, o);
                        }
                    });
                }
            }
            _ => {
                if a.num_rows() < thr {
                    for (k, o) in out.iter_mut().enumerate() {
                        body(k, o);
                    }
                } else {
                    out.par_iter_mut().enumerate().for_each(|(k, o)| body(k, o));
                }
            }
        }
    });
}

/// Reusable working memory for [`gespmv_srcsr_with`]: the per-segment
/// partial-accumulator vectors and the fixup staging buffer. Holding one of
/// these across factor iterations removes the per-launch allocation churn
/// (the GPU analog: the paper allocates all working buffers once up front).
#[derive(Debug)]
pub struct SrcsrScratch<A> {
    partials: Vec<Vec<(u32, A)>>,
    flat: Vec<(u32, A)>,
}

impl<A> SrcsrScratch<A> {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            partials: Vec::new(),
            flat: Vec::new(),
        }
    }
}

impl<A> Default for SrcsrScratch<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// Segmented-reduction generalized SpMV (the paper's SRCSR scheme): the
/// nonzero range is split into equal segments processed in parallel;
/// rows crossing segment boundaries are finished in a sequential fixup.
///
/// Every output row is written exactly once: a row fully inside a segment
/// is written by that segment, an empty row is written by the unique
/// segment whose nonzero range contains the row's (virtual) start offset
/// (trailing empty rows belong to the last segment), and a row straddling
/// segment boundaries is written by the fixup pass. There is no full-output
/// pre-fill pass.
pub fn gespmv_srcsr<T: Scalar, M: GeSpmvMatrix<T>, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    a: &M,
    ops: &O,
    out: &mut [O::Out],
) {
    let mut scratch = SrcsrScratch::new();
    gespmv_srcsr_with(dev, name, a, ops, out, &mut scratch);
}

/// [`gespmv_srcsr`] with caller-owned [`SrcsrScratch`], for hot loops.
pub fn gespmv_srcsr_with<T: Scalar, M: GeSpmvMatrix<T>, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    a: &M,
    ops: &O,
    out: &mut [O::Out],
    scratch: &mut SrcsrScratch<O::Acc>,
) {
    assert_eq!(out.len(), a.num_rows(), "output length mismatch");
    if dev.tracer().is_active() {
        dev.tracer().metric("gespmv_rows", a.num_rows() as f64);
    }
    let nnz = a.nnz();
    let nrows = a.num_rows();
    if nnz == 0 {
        launch::map1(dev, name, out, 0, |k| {
            ops.finalize(a.global_row(k), ops.identity())
        });
        return;
    }
    let traffic = base_traffic(a, ops);
    let SrcsrScratch { partials, flat } = scratch;
    dev.launch(name, traffic, || {
        let nseg = (rayon::current_num_threads().max(1) * 4).min(nnz);
        let seg_len = nnz.div_ceil(nseg);
        let vrp = a.vrow_ptr();
        partials.resize_with(nseg, Vec::new);
        let view = ScatterSlice::new(out);
        partials.par_iter_mut().enumerate().for_each(|(s, local)| {
            local.clear();
            let seg_start = s * seg_len;
            let seg_end = ((s + 1) * seg_len).min(nnz);
            if seg_start >= seg_end {
                return;
            }
            // Does this segment end the nonzero range? Then it also owns
            // any trailing empty rows (virtual start offset == nnz).
            let last = seg_end == nnz;
            // Binary search for the first owned row — the "setup kernel"
            // the paper observes cuSPARSE also runs. `row` is the first
            // row starting at or after seg_start; if that row starts
            // strictly after seg_start, the previous row straddles the
            // boundary and this segment reduces its right part.
            let mut row = vrp.partition_point(|&p| p < seg_start);
            if row == vrp.len() || vrp[row] > seg_start {
                row -= 1;
            }
            while row < nrows {
                let rs = vrp[row];
                let re = vrp[row + 1];
                if rs >= seg_end && !(last && rs == nnz) {
                    break;
                }
                let g = a.global_row(row);
                if rs == re {
                    // Empty row owned by this segment (seg_start <= rs <
                    // seg_end, or rs == nnz on the last segment).
                    // SAFETY: exactly one segment owns each empty row;
                    // nothing else writes it.
                    unsafe { view.write(row, ops.finalize(g, ops.identity())) };
                    row += 1;
                    continue;
                }
                let lo = rs.max(seg_start);
                let hi = re.min(seg_end);
                let (cols, vals) = a.row_data(row);
                let mut acc = ops.identity();
                for e in lo..hi {
                    acc = ops.combine(acc, ops.multiply(g, cols[e - rs], vals[e - rs]));
                }
                if rs >= seg_start && re <= seg_end {
                    // SAFETY: this row's entry range lies entirely in this
                    // segment, so no other segment writes it.
                    unsafe { view.write(row, ops.finalize(g, acc)) };
                } else {
                    // Straddling row: emit a partial keyed by *local* row.
                    local.push((row as u32, acc));
                }
                row += 1;
            }
        });
    });
    // Sequential fixup: combine partials by row (few — at most 2·nseg).
    let fixup_count: usize = partials.iter().map(|p| p.len()).sum();
    if fixup_count > 0 {
        let traffic = Traffic::new()
            .read_bytes((fixup_count * std::mem::size_of::<(u32, O::Acc)>()) as u64)
            .writes::<O::Out>(fixup_count);
        dev.launch("srcsr_fixup", traffic, || {
            flat.clear();
            for p in partials.iter_mut() {
                flat.append(p);
            }
            flat.sort_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < flat.len() {
                let row = flat[i].0;
                let mut acc = flat[i].1;
                let mut j = i + 1;
                while j < flat.len() && flat[j].0 == row {
                    acc = ops.combine(acc, flat[j].1);
                    j += 1;
                }
                out[row as usize] = ops.finalize(a.global_row(row as usize), acc);
                i = j;
            }
        });
    }
}

/// Which generalized-SpMV engine to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmvEngine {
    /// One logical thread per row.
    RowParallel,
    /// Segmented reduction over the nonzero range (paper's SRCSR).
    SrCsr,
}

/// Dispatch on [`SpmvEngine`].
pub fn gespmv<T: Scalar, M: GeSpmvMatrix<T>, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    engine: SpmvEngine,
    a: &M,
    ops: &O,
    out: &mut [O::Out],
) {
    match engine {
        SpmvEngine::RowParallel => gespmv_rowpar(dev, name, a, ops, out),
        SpmvEngine::SrCsr => gespmv_srcsr(dev, name, a, ops, out),
    }
}

/// [`gespmv`] with caller-owned [`SrcsrScratch`] (ignored by the
/// row-parallel engine), for hot loops.
pub fn gespmv_with<T: Scalar, M: GeSpmvMatrix<T>, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    engine: SpmvEngine,
    a: &M,
    ops: &O,
    out: &mut [O::Out],
    scratch: &mut SrcsrScratch<O::Acc>,
) {
    match engine {
        SpmvEngine::RowParallel => gespmv_rowpar(dev, name, a, ops, out),
        SpmvEngine::SrCsr => gespmv_srcsr_with(dev, name, a, ops, out, scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::subset_row_ptr;
    use crate::random::random_symmetric;
    use crate::stencil::{grid2d, FIVE_POINT};

    fn check_axpy(a: &Csr<f64>, engine: SpmvEngine) {
        let dev = Device::default();
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let d: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
        let mut out = vec![0.0; n];
        gespmv(&dev, "axpy", engine, a, &AxpyOps { x: &x, d: &d }, &mut out);
        let mut want = a.spmv_ref(&x);
        for (w, dd) in want.iter_mut().zip(&d) {
            *w += dd;
        }
        for i in 0..n {
            assert!(
                (out[i] - want[i]).abs() <= 1e-9 * (1.0 + want[i].abs()),
                "row {i}: {} vs {}",
                out[i],
                want[i]
            );
        }
    }

    #[test]
    fn axpy_rowpar_matches_reference() {
        let a: Csr<f64> = grid2d(37, 21, &FIVE_POINT);
        check_axpy(&a, SpmvEngine::RowParallel);
    }

    #[test]
    fn axpy_srcsr_matches_reference() {
        let a: Csr<f64> = grid2d(37, 21, &FIVE_POINT);
        check_axpy(&a, SpmvEngine::SrCsr);
        let a: Csr<f64> = random_symmetric(5000, 9.0, 0.1, 1.0, 7);
        check_axpy(&a, SpmvEngine::SrCsr);
    }

    #[test]
    fn srcsr_handles_empty_rows_and_skew() {
        // matrix with empty rows and one huge row
        let mut coo = crate::coo::Coo::<f64>::new(1000, 1000);
        for j in 0..999u32 {
            coo.push(500, j, 1.0); // dense row
        }
        coo.push(3, 4, 2.0);
        let a = Csr::from_coo(coo);
        check_axpy(&a, SpmvEngine::SrCsr);
        check_axpy(&a, SpmvEngine::RowParallel);
    }

    #[test]
    fn srcsr_empty_matrix() {
        let a = Csr::<f64>::zeros(10, 10);
        check_axpy(&a, SpmvEngine::SrCsr);
    }

    #[test]
    fn srcsr_scratch_reuse_across_calls() {
        let dev = Device::default();
        let mut scratch = SrcsrScratch::new();
        // Different shapes through the same scratch, interleaved.
        for n in [50usize, 3000, 120] {
            let a: Csr<f64> = random_symmetric(n, 6.0, 0.1, 1.0, n as u64);
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let d: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
            let ops = AxpyOps { x: &x, d: &d };
            let mut o1 = vec![0.0; n];
            let mut o2 = vec![0.0; n];
            gespmv_srcsr_with(&dev, "s", &a, &ops, &mut o1, &mut scratch);
            gespmv_srcsr(&dev, "s", &a, &ops, &mut o2);
            assert_eq!(o1, o2, "n={n}");
        }
    }

    /// Both engines over a row view must produce, per selected row, exactly
    /// what the full-matrix run produces for that row.
    #[test]
    fn engines_on_row_view_match_full_rows() {
        let a: Csr<f64> = random_symmetric(2000, 7.0, 0.1, 1.0, 11);
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos()).collect();
        let d: Vec<f64> = (0..n).map(|i| i as f64 * 0.02).collect();
        let ops = AxpyOps { x: &x, d: &d };
        let dev = Device::default();
        let mut full = vec![0.0; n];
        gespmv_rowpar(&dev, "full", &a, &ops, &mut full);
        // Every third row plus the last (exercises trailing boundary).
        let rows: Vec<u32> = (0..n as u32).filter(|r| r % 3 == 0 || *r == n as u32 - 1).collect();
        let mut vp = Vec::new();
        subset_row_ptr(&a, &rows, &mut vp);
        let view = CsrRowView::new(&a, &rows, &vp);
        for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
            let mut out = vec![0.0; rows.len()];
            gespmv(&dev, "view", engine, &view, &ops, &mut out);
            for (k, &r) in rows.iter().enumerate() {
                assert_eq!(
                    out[k].to_bits(),
                    full[r as usize].to_bits(),
                    "engine {engine:?}, view row {k} (global {r})"
                );
            }
        }
    }

    /// Row views with empty rows and empty subsets behave like the full run.
    #[test]
    fn srcsr_row_view_with_empty_rows() {
        let mut coo = crate::coo::Coo::<f64>::new(400, 400);
        for j in 0..399u32 {
            coo.push(200, j, 0.5); // skewed row
        }
        coo.push(7, 9, 2.0);
        let a = Csr::from_coo(coo);
        let x = vec![1.0; 400];
        let d = vec![0.25; 400];
        let ops = AxpyOps { x: &x, d: &d };
        let dev = Device::default();
        let mut full = vec![0.0; 400];
        gespmv_rowpar(&dev, "full", &a, &ops, &mut full);
        // Subset containing empty rows around the dense one.
        let rows: Vec<u32> = vec![0, 7, 199, 200, 201, 399];
        let mut vp = Vec::new();
        subset_row_ptr(&a, &rows, &mut vp);
        let view = CsrRowView::new(&a, &rows, &vp);
        let mut out = vec![0.0; rows.len()];
        gespmv_srcsr(&dev, "view", &view, &ops, &mut out);
        for (k, &r) in rows.iter().enumerate() {
            assert_eq!(out[k], full[r as usize], "view row {k} (global {r})");
        }
        // Empty subset: no launches should panic, nothing written.
        let rows: Vec<u32> = vec![];
        let mut vp = Vec::new();
        subset_row_ptr(&a, &rows, &mut vp);
        let view = CsrRowView::new(&a, &rows, &vp);
        let mut out: Vec<f64> = vec![];
        gespmv_srcsr(&dev, "view", &view, &ops, &mut out);
        gespmv_rowpar(&dev, "view", &view, &ops, &mut out);
    }

    #[test]
    fn traffic_matches_table2_shape() {
        // Table 2 (k=0 part): reads nnz values + nnz col indices + (N+1)
        // row ptrs (+ functor extras); writes N outputs.
        let a: Csr<f64> = grid2d(64, 64, &FIVE_POINT);
        let dev = Device::default();
        let x = vec![1.0; a.nrows()];
        let d = vec![0.0; a.nrows()];
        let ops = AxpyOps { x: &x, d: &d };
        let mut out = vec![0.0; a.nrows()];
        gespmv_rowpar(&dev, "axpy", &a, &ops, &mut out);
        let s = dev.stats();
        let expect_read = (a.nnz() * 8 + a.nnz() * 4 + (a.nrows() + 1) * 8) as u64
            + ops.extra_read_bytes(a.nrows(), a.nnz());
        assert_eq!(s.traffic.read, expect_read);
        assert_eq!(s.traffic.written, (a.nrows() * 8) as u64);
    }

    #[test]
    fn row_view_traffic_scales_with_subset() {
        // A view over f rows covering z nonzeros reads z values + z col
        // indices + (f+1) virtual row ptrs + f gather entries (+ extras
        // computed over the view shape) and writes f outputs.
        let a: Csr<f64> = grid2d(64, 64, &FIVE_POINT);
        let n = a.nrows();
        let rows: Vec<u32> = (0..n as u32).step_by(4).collect();
        let mut vp = Vec::new();
        subset_row_ptr(&a, &rows, &mut vp);
        let view = CsrRowView::new(&a, &rows, &vp);
        let x = vec![1.0; n];
        let d = vec![0.0; n];
        let ops = AxpyOps { x: &x, d: &d };
        let dev = Device::default();
        let mut out = vec![0.0; rows.len()];
        gespmv_rowpar(&dev, "axpy", &view, &ops, &mut out);
        let s = dev.stats();
        let f = rows.len();
        let z = view.nnz();
        let expect_read = (z * 8 + z * 4 + (f + 1) * 8 + f * 4) as u64
            + ops.extra_read_bytes(f, z);
        assert_eq!(s.traffic.read, expect_read);
        assert_eq!(s.traffic.written, (f * 8) as u64);
        assert!(s.traffic.read < (a.nnz() * 12) as u64, "view must read less");
    }

    #[test]
    fn max_semiring() {
        // out[i] = max_j (a_ij + x_j), the (max, +) tropical semiring —
        // shows the engine is genuinely generic.
        struct MaxPlus<'a> {
            x: &'a [f64],
        }
        impl<'a> GeSpmvOps<f64> for MaxPlus<'a> {
            type Acc = f64;
            type Out = f64;
            fn identity(&self) -> f64 {
                f64::NEG_INFINITY
            }
            fn multiply(&self, _r: u32, c: u32, v: f64) -> f64 {
                v + self.x[c as usize]
            }
            fn combine(&self, a: f64, b: f64) -> f64 {
                a.max(b)
            }
            fn finalize(&self, _r: u32, acc: f64) -> f64 {
                acc
            }
        }
        let a: Csr<f64> = random_symmetric(800, 6.0, 0.0, 1.0, 3);
        let x: Vec<f64> = (0..800).map(|i| i as f64 * 0.001).collect();
        let dev = Device::default();
        let mut o1 = vec![0.0; 800];
        let mut o2 = vec![0.0; 800];
        gespmv_rowpar(&dev, "mp", &a, &MaxPlus { x: &x }, &mut o1);
        gespmv_srcsr(&dev, "mp", &a, &MaxPlus { x: &x }, &mut o2);
        assert_eq!(o1, o2);
        for (i, &o) in o1.iter().enumerate() {
            let want = a
                .row(i)
                .map(|(c, v)| v + x[c as usize])
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(o, want);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coo::Coo;
    use crate::csr::subset_row_ptr;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The two engines must agree on arbitrary sparse matrices for the
        /// ordinary semiring (floating sums reassociate, so compare with a
        /// tolerance).
        #[test]
        fn engines_agree_on_random_matrices(
            n in 1usize..80,
            edges in proptest::collection::vec((0u32..80, 0u32..80, -5.0f64..5.0), 0..600),
        ) {
            let mut coo = Coo::new(n, n);
            for &(r, c, v) in &edges {
                if (r as usize) < n && (c as usize) < n {
                    coo.push(r, c, v);
                }
            }
            let a = Csr::from_coo(coo);
            let dev = Device::default();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let d: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
            let mut o1 = vec![0.0; n];
            let mut o2 = vec![0.0; n];
            gespmv_rowpar(&dev, "p", &a, &AxpyOps { x: &x, d: &d }, &mut o1);
            gespmv_srcsr(&dev, "p", &a, &AxpyOps { x: &x, d: &d }, &mut o2);
            for i in 0..n {
                prop_assert!((o1[i] - o2[i]).abs() < 1e-9 * (1.0 + o1[i].abs()));
            }
        }

        /// With an exactly-associative integer-like semiring the engines
        /// must agree bit-for-bit.
        #[test]
        fn engines_bitwise_equal_on_min_semiring(
            n in 1usize..60,
            edges in proptest::collection::vec((0u32..60, 0u32..60, 0u32..1000), 0..400),
        ) {
            struct MinOps;
            impl GeSpmvOps<f64> for MinOps {
                type Acc = u64;
                type Out = u64;
                fn identity(&self) -> u64 { u64::MAX }
                fn multiply(&self, _r: u32, c: u32, v: f64) -> u64 {
                    ((v as u64) << 8) | (c as u64 % 251)
                }
                fn combine(&self, a: u64, b: u64) -> u64 { a.min(b) }
                fn finalize(&self, r: u32, acc: u64) -> u64 {
                    acc.wrapping_add(r as u64)
                }
            }
            let mut coo = Coo::new(n, n);
            for &(r, c, v) in &edges {
                if (r as usize) < n && (c as usize) < n {
                    coo.push(r, c, v as f64);
                }
            }
            let a = Csr::from_coo(coo);
            let dev = Device::default();
            let mut o1 = vec![0u64; n];
            let mut o2 = vec![0u64; n];
            gespmv_rowpar(&dev, "p", &a, &MinOps, &mut o1);
            gespmv_srcsr(&dev, "p", &a, &MinOps, &mut o2);
            prop_assert_eq!(o1, o2);
        }

        /// Row-view runs (both engines) must agree bit-for-bit with the
        /// full-matrix run on every selected row, for arbitrary matrices
        /// and arbitrary strictly-ascending row subsets.
        #[test]
        fn row_views_bitwise_match_full(
            n in 1usize..60,
            edges in proptest::collection::vec((0u32..60, 0u32..60, 0u32..1000), 0..400),
            picks in proptest::collection::vec(0u32..60, 0..40),
        ) {
            struct MinOps;
            impl GeSpmvOps<f64> for MinOps {
                type Acc = u64;
                type Out = u64;
                fn identity(&self) -> u64 { u64::MAX }
                fn multiply(&self, _r: u32, c: u32, v: f64) -> u64 {
                    ((v as u64) << 8) | (c as u64 % 251)
                }
                fn combine(&self, a: u64, b: u64) -> u64 { a.min(b) }
                fn finalize(&self, r: u32, acc: u64) -> u64 {
                    acc.wrapping_add(r as u64)
                }
            }
            let mut coo = Coo::new(n, n);
            for &(r, c, v) in &edges {
                if (r as usize) < n && (c as usize) < n {
                    coo.push(r, c, v as f64);
                }
            }
            let a = Csr::from_coo(coo);
            let dev = Device::default();
            let mut full = vec![0u64; n];
            gespmv_rowpar(&dev, "p", &a, &MinOps, &mut full);
            let mut rows: Vec<u32> =
                picks.iter().copied().filter(|&r| (r as usize) < n).collect();
            rows.sort_unstable();
            rows.dedup();
            let mut vp = Vec::new();
            subset_row_ptr(&a, &rows, &mut vp);
            let view = CsrRowView::new(&a, &rows, &vp);
            let mut o1 = vec![0u64; rows.len()];
            let mut o2 = vec![0u64; rows.len()];
            gespmv_rowpar(&dev, "v", &view, &MinOps, &mut o1);
            gespmv_srcsr(&dev, "v", &view, &MinOps, &mut o2);
            for (k, &r) in rows.iter().enumerate() {
                prop_assert_eq!(o1[k], full[r as usize]);
                prop_assert_eq!(o2[k], full[r as usize]);
            }
            prop_assert_eq!(o1, o2);
        }
    }
}
