//! Generalized sparse matrix–vector product (Sec. 4.1 of the paper).
//!
//! The paper expresses the edge-proposition kernel of the parallel
//! [0,n]-factor algorithm as an SpMV in which the multiplication `⊗` and
//! reduction `⊕` are replaced by arbitrary operations, with *different
//! types* for matrix values, the per-column state vector, the accumulator
//! and the output — flexibility GraphBLAS lacks (Sec. 2, "GraphBLAS").
//!
//! [`GeSpmvOps`] captures that parameterization. Two execution engines are
//! provided:
//!
//! * [`gespmv_rowpar`] — one logical thread per row (the natural CSR
//!   kernel; efficient for the bounded-degree matrices of Table 3);
//! * [`gespmv_srcsr`] — the paper's **SRCSR** segmented-reduction engine:
//!   the nonzero range is split evenly across workers, each worker reduces
//!   its segment with a sequential reduction-by-key along the rows it
//!   touches, and partial accumulators of rows that straddle segment
//!   boundaries are combined in a fixup pass. This is load-balanced even
//!   for wildly skewed row lengths, which is why the paper uses it.
//!
//! Ordinary `d = Ax + d` is recovered by [`AxpyOps`]; the proposition
//! functor lives in `lf-core`.

use crate::csr::Csr;
use crate::scalar::Scalar;
use lf_kernel::{launch, Device, ScatterSlice, Traffic};
use rayon::prelude::*;

/// Operations parameterizing a generalized SpMV over a `Csr<T>`.
///
/// For each row `i`: `out[i] = finalize(i, ⊕_{j ∈ row(i)} multiply(i, j, a_ij))`,
/// where `⊕` = [`GeSpmvOps::combine`] starting from [`GeSpmvOps::identity`].
/// `combine` must be associative with `identity` as neutral element —
/// required for the segmented engine to split rows across workers.
pub trait GeSpmvOps<T: Scalar>: Sync {
    /// Accumulator type (`⊕`-monoid carrier).
    type Acc: Copy + Send + Sync;
    /// Per-row output type.
    type Out: Copy + Send + Sync + Default;

    /// Neutral element of `combine`.
    fn identity(&self) -> Self::Acc;
    /// The `⊗` operation, with access to row and column indices so that
    /// functors can perform indirect lookups into captured state vectors
    /// (confirmed-edge counts, charges, ...), as the paper requires.
    fn multiply(&self, row: u32, col: u32, val: T) -> Self::Acc;
    /// The `⊕` reduction.
    fn combine(&self, a: Self::Acc, b: Self::Acc) -> Self::Acc;
    /// Produce the row output from the reduced accumulator.
    fn finalize(&self, row: u32, acc: Self::Acc) -> Self::Out;
    /// Bytes of captured state read per matrix entry + per row, used only
    /// for traffic accounting (Table 2). Default: nothing extra.
    fn extra_read_bytes(&self, _nrows: usize, _nnz: usize) -> u64 {
        0
    }
}

/// Ordinary `out = A·x + d` on a semiring of scalars.
pub struct AxpyOps<'a, T> {
    /// Input vector `x` (length = ncols).
    pub x: &'a [T],
    /// Additive input `d` (length = nrows).
    pub d: &'a [T],
}

impl<'a, T: Scalar> GeSpmvOps<T> for AxpyOps<'a, T> {
    type Acc = T;
    type Out = T;

    #[inline]
    fn identity(&self) -> T {
        T::ZERO
    }
    #[inline]
    fn multiply(&self, _row: u32, col: u32, val: T) -> T {
        val * self.x[col as usize]
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a + b
    }
    #[inline]
    fn finalize(&self, row: u32, acc: T) -> T {
        acc + self.d[row as usize]
    }
    fn extra_read_bytes(&self, nrows: usize, nnz: usize) -> u64 {
        // x gathered per entry, d read per row.
        (nnz * std::mem::size_of::<T>() + nrows * std::mem::size_of::<T>()) as u64
    }
}

fn base_traffic<T: Scalar, O: GeSpmvOps<T>>(a: &Csr<T>, ops: &O) -> Traffic {
    Traffic::new()
        .reads::<T>(a.nnz()) // CSR values
        .reads::<u32>(a.nnz()) // CSR col indices
        .reads::<usize>(a.nrows() + 1) // CSR row ptrs
        .read_bytes(ops.extra_read_bytes(a.nrows(), a.nnz()))
        .writes::<O::Out>(a.nrows())
}

/// Row-parallel generalized SpMV: one logical thread per row.
pub fn gespmv_rowpar<T: Scalar, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    a: &Csr<T>,
    ops: &O,
    out: &mut [O::Out],
) {
    assert_eq!(out.len(), a.nrows(), "output length mismatch");
    let traffic = base_traffic(a, ops);
    dev.launch(name, traffic, || {
        let body = |i: usize, o: &mut O::Out| {
            let mut acc = ops.identity();
            for (c, v) in a.row(i) {
                acc = ops.combine(acc, ops.multiply(i as u32, c, v));
            }
            *o = ops.finalize(i as u32, acc);
        };
        if a.nrows() < 2048 {
            for (i, o) in out.iter_mut().enumerate() {
                body(i, o);
            }
        } else {
            out.par_iter_mut().enumerate().for_each(|(i, o)| body(i, o));
        }
    });
}

/// Segmented-reduction generalized SpMV (the paper's SRCSR scheme): the
/// nonzero range is split into equal segments processed in parallel;
/// rows crossing segment boundaries are finished in a sequential fixup.
pub fn gespmv_srcsr<T: Scalar, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    a: &Csr<T>,
    ops: &O,
    out: &mut [O::Out],
) {
    assert_eq!(out.len(), a.nrows(), "output length mismatch");
    let nnz = a.nnz();
    let nrows = a.nrows();
    if nnz == 0 {
        launch::map1(dev, name, out, 0, |i| ops.finalize(i as u32, ops.identity()));
        return;
    }
    let traffic = base_traffic(a, ops);
    // Partial accumulator of a boundary-crossing row: (row, acc).
    let mut partials: Vec<Vec<(u32, O::Acc)>> = Vec::new();
    dev.launch(name, traffic, || {
        let nseg = (rayon::current_num_threads().max(1) * 4).min(nnz);
        let seg_len = nnz.div_ceil(nseg);
        let row_ptr = a.row_ptr();
        let col_idx = a.col_idx();
        let vals = a.vals();
        // Rows with no entries are untouched by segments: pre-fill every
        // row with finalize(identity); covered rows are overwritten.
        let fill = |o: &mut [O::Out]| {
            o.par_iter_mut()
                .enumerate()
                .for_each(|(i, o)| *o = ops.finalize(i as u32, ops.identity()));
        };
        fill(out);
        let view = ScatterSlice::new(out);
        partials = (0..nseg)
            .into_par_iter()
            .map(|s| {
                let seg_start = s * seg_len;
                let seg_end = ((s + 1) * seg_len).min(nnz);
                if seg_start >= seg_end {
                    return Vec::new();
                }
                let mut local: Vec<(u32, O::Acc)> = Vec::new();
                // Binary search for the row containing seg_start — the
                // "setup kernel" the paper observes cuSPARSE also runs.
                let mut row = row_ptr.partition_point(|&p| p <= seg_start) - 1;
                let mut k = seg_start;
                while k < seg_end {
                    let row_end = row_ptr[row + 1].min(seg_end);
                    let mut acc = ops.identity();
                    for e in k..row_end {
                        acc = ops.combine(acc, ops.multiply(row as u32, col_idx[e], vals[e]));
                    }
                    let full = row_ptr[row] >= seg_start && row_ptr[row + 1] <= seg_end;
                    if full {
                        // SAFETY: this row's entry range lies entirely in
                        // this segment, so no other segment writes it; the
                        // pre-fill pass completed before this scatter began.
                        unsafe { view.write(row, ops.finalize(row as u32, acc)) };
                    } else {
                        local.push((row as u32, acc));
                    }
                    k = row_end;
                    row += 1;
                }
                local
            })
            .collect();
    });
    // Sequential fixup: combine partials by row (few — at most 2·nseg).
    let fixup_count: usize = partials.iter().map(|p| p.len()).sum();
    if fixup_count > 0 {
        let traffic = Traffic::new()
            .read_bytes((fixup_count * std::mem::size_of::<(u32, O::Acc)>()) as u64)
            .writes::<O::Out>(fixup_count);
        dev.launch("srcsr_fixup", traffic, || {
            let mut flat: Vec<(u32, O::Acc)> = partials.into_iter().flatten().collect();
            flat.sort_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < flat.len() {
                let row = flat[i].0;
                let mut acc = flat[i].1;
                let mut j = i + 1;
                while j < flat.len() && flat[j].0 == row {
                    acc = ops.combine(acc, flat[j].1);
                    j += 1;
                }
                out[row as usize] = ops.finalize(row, acc);
                i = j;
            }
        });
    }
    let _ = nrows;
}

/// Which generalized-SpMV engine to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpmvEngine {
    /// One logical thread per row.
    RowParallel,
    /// Segmented reduction over the nonzero range (paper's SRCSR).
    SrCsr,
}

/// Dispatch on [`SpmvEngine`].
pub fn gespmv<T: Scalar, O: GeSpmvOps<T>>(
    dev: &Device,
    name: &str,
    engine: SpmvEngine,
    a: &Csr<T>,
    ops: &O,
    out: &mut [O::Out],
) {
    match engine {
        SpmvEngine::RowParallel => gespmv_rowpar(dev, name, a, ops, out),
        SpmvEngine::SrCsr => gespmv_srcsr(dev, name, a, ops, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::random_symmetric;
    use crate::stencil::{grid2d, FIVE_POINT};

    fn check_axpy(a: &Csr<f64>, engine: SpmvEngine) {
        let dev = Device::default();
        let n = a.nrows();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let d: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
        let mut out = vec![0.0; n];
        gespmv(&dev, "axpy", engine, a, &AxpyOps { x: &x, d: &d }, &mut out);
        let mut want = a.spmv_ref(&x);
        for (w, dd) in want.iter_mut().zip(&d) {
            *w += dd;
        }
        for i in 0..n {
            assert!(
                (out[i] - want[i]).abs() <= 1e-9 * (1.0 + want[i].abs()),
                "row {i}: {} vs {}",
                out[i],
                want[i]
            );
        }
    }

    #[test]
    fn axpy_rowpar_matches_reference() {
        let a: Csr<f64> = grid2d(37, 21, &FIVE_POINT);
        check_axpy(&a, SpmvEngine::RowParallel);
    }

    #[test]
    fn axpy_srcsr_matches_reference() {
        let a: Csr<f64> = grid2d(37, 21, &FIVE_POINT);
        check_axpy(&a, SpmvEngine::SrCsr);
        let a: Csr<f64> = random_symmetric(5000, 9.0, 0.1, 1.0, 7);
        check_axpy(&a, SpmvEngine::SrCsr);
    }

    #[test]
    fn srcsr_handles_empty_rows_and_skew() {
        // matrix with empty rows and one huge row
        let mut coo = crate::coo::Coo::<f64>::new(1000, 1000);
        for j in 0..999u32 {
            coo.push(500, j, 1.0); // dense row
        }
        coo.push(3, 4, 2.0);
        let a = Csr::from_coo(coo);
        check_axpy(&a, SpmvEngine::SrCsr);
        check_axpy(&a, SpmvEngine::RowParallel);
    }

    #[test]
    fn srcsr_empty_matrix() {
        let a = Csr::<f64>::zeros(10, 10);
        check_axpy(&a, SpmvEngine::SrCsr);
    }

    #[test]
    fn traffic_matches_table2_shape() {
        // Table 2 (k=0 part): reads nnz values + nnz col indices + (N+1)
        // row ptrs (+ functor extras); writes N outputs.
        let a: Csr<f64> = grid2d(64, 64, &FIVE_POINT);
        let dev = Device::default();
        let x = vec![1.0; a.nrows()];
        let d = vec![0.0; a.nrows()];
        let ops = AxpyOps { x: &x, d: &d };
        let mut out = vec![0.0; a.nrows()];
        gespmv_rowpar(&dev, "axpy", &a, &ops, &mut out);
        let s = dev.stats();
        let expect_read = (a.nnz() * 8 + a.nnz() * 4 + (a.nrows() + 1) * 8) as u64
            + ops.extra_read_bytes(a.nrows(), a.nnz());
        assert_eq!(s.traffic.read, expect_read);
        assert_eq!(s.traffic.written, (a.nrows() * 8) as u64);
    }

    #[test]
    fn max_semiring() {
        // out[i] = max_j (a_ij + x_j), the (max, +) tropical semiring —
        // shows the engine is genuinely generic.
        struct MaxPlus<'a> {
            x: &'a [f64],
        }
        impl<'a> GeSpmvOps<f64> for MaxPlus<'a> {
            type Acc = f64;
            type Out = f64;
            fn identity(&self) -> f64 {
                f64::NEG_INFINITY
            }
            fn multiply(&self, _r: u32, c: u32, v: f64) -> f64 {
                v + self.x[c as usize]
            }
            fn combine(&self, a: f64, b: f64) -> f64 {
                a.max(b)
            }
            fn finalize(&self, _r: u32, acc: f64) -> f64 {
                acc
            }
        }
        let a: Csr<f64> = random_symmetric(800, 6.0, 0.0, 1.0, 3);
        let x: Vec<f64> = (0..800).map(|i| i as f64 * 0.001).collect();
        let dev = Device::default();
        let mut o1 = vec![0.0; 800];
        let mut o2 = vec![0.0; 800];
        gespmv_rowpar(&dev, "mp", &a, &MaxPlus { x: &x }, &mut o1);
        gespmv_srcsr(&dev, "mp", &a, &MaxPlus { x: &x }, &mut o2);
        assert_eq!(o1, o2);
        for i in 0..800 {
            let want = a
                .row(i)
                .map(|(c, v)| v + x[c as usize])
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(o1[i], want);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::coo::Coo;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The two engines must agree on arbitrary sparse matrices for the
        /// ordinary semiring (floating sums reassociate, so compare with a
        /// tolerance).
        #[test]
        fn engines_agree_on_random_matrices(
            n in 1usize..80,
            edges in proptest::collection::vec((0u32..80, 0u32..80, -5.0f64..5.0), 0..600),
        ) {
            let mut coo = Coo::new(n, n);
            for &(r, c, v) in &edges {
                if (r as usize) < n && (c as usize) < n {
                    coo.push(r, c, v);
                }
            }
            let a = Csr::from_coo(coo);
            let dev = Device::default();
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let d: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
            let mut o1 = vec![0.0; n];
            let mut o2 = vec![0.0; n];
            gespmv_rowpar(&dev, "p", &a, &AxpyOps { x: &x, d: &d }, &mut o1);
            gespmv_srcsr(&dev, "p", &a, &AxpyOps { x: &x, d: &d }, &mut o2);
            for i in 0..n {
                prop_assert!((o1[i] - o2[i]).abs() < 1e-9 * (1.0 + o1[i].abs()));
            }
        }

        /// With an exactly-associative integer-like semiring the engines
        /// must agree bit-for-bit.
        #[test]
        fn engines_bitwise_equal_on_min_semiring(
            n in 1usize..60,
            edges in proptest::collection::vec((0u32..60, 0u32..60, 0u32..1000), 0..400),
        ) {
            struct MinOps;
            impl GeSpmvOps<f64> for MinOps {
                type Acc = u64;
                type Out = u64;
                fn identity(&self) -> u64 { u64::MAX }
                fn multiply(&self, _r: u32, c: u32, v: f64) -> u64 {
                    (v as u64) << 8 | c as u64 % 251
                }
                fn combine(&self, a: u64, b: u64) -> u64 { a.min(b) }
                fn finalize(&self, r: u32, acc: u64) -> u64 {
                    acc.wrapping_add(r as u64)
                }
            }
            let mut coo = Coo::new(n, n);
            for &(r, c, v) in &edges {
                if (r as usize) < n && (c as usize) < n {
                    coo.push(r, c, v as f64);
                }
            }
            let a = Csr::from_coo(coo);
            let dev = Device::default();
            let mut o1 = vec![0u64; n];
            let mut o2 = vec![0u64; n];
            gespmv_rowpar(&dev, "p", &a, &MinOps, &mut o1);
            gespmv_srcsr(&dev, "p", &a, &MinOps, &mut o2);
            prop_assert_eq!(o1, o2);
        }
    }
}
