//! Floating-point scalar abstraction.
//!
//! The paper runs factor extraction in single precision (the RTX 2080 Ti
//! has few double units) and the solver experiments in double precision.
//! All matrix/graph code here is generic over [`Scalar`], implemented for
//! `f32` and `f64`.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Minimal real-scalar trait for the workspace (avoids an external
/// num-traits dependency).
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Sum
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Whether the value is finite.
    fn is_finite(self) -> bool;
    /// Machine epsilon.
    fn epsilon() -> Self;
    /// IEEE 754 `totalOrder` comparison — a *total* order even over NaNs
    /// and signed zeros, unlike `PartialOrd`. Combines that must be
    /// associative/commutative regardless of input (the weakest-edge
    /// minimum, top-n selection) must compare through this, never through
    /// `partial_cmp`.
    fn total_cmp(self, other: Self) -> std::cmp::Ordering;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn epsilon() -> Self {
                <$t>::EPSILON
            }
            #[inline]
            fn total_cmp(self, other: Self) -> std::cmp::Ordering {
                <$t>::total_cmp(&self, &other)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_ops<T: Scalar>() -> T {
        let a = T::from_f64(3.0);
        let b = T::from_f64(-4.0);
        (a * a + b.abs() * b.abs()).sqrt()
    }

    #[test]
    fn scalar_generic_arithmetic() {
        assert_eq!(generic_ops::<f32>(), 5.0f32);
        assert_eq!(generic_ops::<f64>(), 5.0f64);
    }

    #[test]
    fn total_cmp_orders_nan() {
        use std::cmp::Ordering;
        assert_eq!(1.0f64.total_cmp(2.0), Ordering::Less);
        assert_eq!(f64::NAN.total_cmp(f64::INFINITY), Ordering::Greater);
        assert_eq!(f32::NAN.total_cmp(f32::NAN), Ordering::Equal);
        // antisymmetric: a total order even where PartialOrd gives None
        assert_eq!(f64::INFINITY.total_cmp(f64::NAN), Ordering::Less);
    }

    #[test]
    fn constants_and_conversion() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0);
        assert_eq!(f64::from_f64(2.5).to_f64(), 2.5);
        assert!(f64::ONE.is_finite());
        assert!(!(f64::ONE / f64::ZERO).is_finite());
        assert!(f32::epsilon() > 0.0);
    }
}
