//! MatrixMarket (`.mtx`) I/O — the interchange format of the SuiteSparse
//! Matrix Collection the paper draws its test matrices from (Table 3).
//!
//! Supports `matrix coordinate {real,integer,pattern} {general,symmetric}`.
//! Symmetric files store the lower triangle only; reading expands it.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the MatrixMarket reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O error.
    Io(std::io::Error),
    /// Structural problem with the file at a specific line.
    Parse {
        /// 1-based line number the problem was found on (0 when the file
        /// ended before the expected content, e.g. a missing size line).
        line: usize,
        /// What is wrong with that line.
        msg: String,
    },
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse { line: 0, msg } => write!(f, "MatrixMarket parse error: {msg}"),
            MmError::Parse { line, msg } => {
                write!(f, "MatrixMarket parse error at line {line}: {msg}")
            }
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> MmError {
    MmError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Read a MatrixMarket coordinate matrix from a reader.
///
/// Strict by design: every parse error reports its 1-based line number,
/// entry lines with trailing tokens are rejected (they indicate a file
/// whose header lies about its format), and non-finite values (NaN, ±inf)
/// are rejected because every weight comparison downstream assumes finite
/// weights.
pub fn read_coo<T: Scalar>(reader: impl Read) -> Result<Coo<T>, MmError> {
    // `lineno` is the 1-based number of the line currently processed.
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    lineno += 1;
    let header = match lines.next() {
        None => return Err(parse_err(0, "empty file")),
        Some(l) => l?.to_lowercase(),
    };
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(lineno, format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err(lineno, "only coordinate format supported"));
    }
    let value_type = fields[3].to_string();
    if !matches!(value_type.as_str(), "real" | "integer" | "pattern") {
        return Err(parse_err(lineno, format!("unsupported value type {value_type}")));
    }
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(lineno, format!("unsupported symmetry {other}"))),
    };

    // Skip comments, read size line.
    let mut size = None;
    for line in lines.by_ref() {
        lineno += 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size = Some(t.to_string());
        break;
    }
    let size_line = size.ok_or_else(|| parse_err(0, "missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| s.parse().map_err(|_| parse_err(lineno, "bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err(lineno, "size line must be 'nrows ncols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(nrows, ncols);
    let mut seen = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "short entry line"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err(lineno, "short entry line"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad col index"))?;
        let v: f64 = if value_type == "pattern" {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err(lineno, "missing value"))?
                .parse()
                .map_err(|_| parse_err(lineno, "bad value"))?
        };
        if let Some(extra) = it.next() {
            return Err(parse_err(
                lineno,
                format!("trailing token '{extra}' on entry line"),
            ));
        }
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(lineno, format!("index out of range: {i} {j}")));
        }
        let (r, c) = ((i - 1) as u32, (j - 1) as u32);
        let val = T::from_f64(v);
        if !val.is_finite() {
            return Err(parse_err(
                lineno,
                format!("non-finite value {v:e} at entry ({i}, {j})"),
            ));
        }
        if symmetric {
            coo.push_sym(r, c, val);
        } else {
            coo.push(r, c, val);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(
            lineno,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(coo)
}

/// Read a MatrixMarket file into CSR.
pub fn read_csr_path<T: Scalar>(path: impl AsRef<Path>) -> Result<Csr<T>, MmError> {
    let f = std::fs::File::open(path)?;
    let coo = read_coo(f)?;
    // `try_from_coo` re-scans after duplicate summation: two finite
    // entries can still overflow to infinity when combined.
    crate::csr::Csr::try_from_coo(coo).map_err(|e| MmError::Parse {
        line: 0,
        msg: e.to_string(),
    })
}

/// Write a matrix as `matrix coordinate real general`.
pub fn write_csr<T: Scalar>(mut w: impl Write, m: &Csr<T>) -> Result<(), std::io::Error> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by linear-forest")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

/// Write a matrix to a `.mtx` file.
pub fn write_csr_path<T: Scalar>(
    path: impl AsRef<Path>,
    m: &Csr<T>,
) -> Result<(), std::io::Error> {
    let f = std::fs::File::create(path)?;
    write_csr(std::io::BufWriter::new(f), m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 2.0\n\
        1 2 -1.0\n\
        2 1 -1.5\n\
        3 3 4.0\n";

    #[test]
    fn reads_general() {
        let coo: Coo<f64> = read_coo(GENERAL.as_bytes()).unwrap();
        let m = Csr::from_coo(coo);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 0), -1.5);
    }

    #[test]
    fn reads_symmetric_expands() {
        let s = "%%MatrixMarket matrix coordinate real symmetric\n\
                 2 2 2\n\
                 1 1 5.0\n\
                 2 1 -3.0\n";
        let m: Csr<f64> = Csr::from_coo(read_coo(s.as_bytes()).unwrap());
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), -3.0);
        assert_eq!(m.get(1, 0), -3.0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn reads_pattern() {
        let s = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let m: Csr<f32> = Csr::from_coo(read_coo(s.as_bytes()).unwrap());
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn roundtrip_write_read() {
        let m: Csr<f64> = Csr::from_coo(read_coo(GENERAL.as_bytes()).unwrap());
        let mut buf = Vec::new();
        write_csr(&mut buf, &m).unwrap();
        let m2: Csr<f64> = Csr::from_coo(read_coo(buf.as_slice()).unwrap());
        assert_eq!(m, m2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_coo::<f64>("hello\n".as_bytes()).is_err());
        assert!(read_coo::<f64>("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
        let bad_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_coo::<f64>(bad_count.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_coo::<f64>(oob.as_bytes()).is_err());
    }

    /// The 1-based line number of a parse failure, panicking on Ok/Io.
    fn fail_line(s: &str) -> (usize, String) {
        match read_coo::<f64>(s.as_bytes()).unwrap_err() {
            MmError::Parse { line, msg } => (line, msg),
            MmError::Io(e) => panic!("expected parse error, got I/O: {e}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let (line, msg) = fail_line("%%MatrixMarket matrix coordinate real general\nnot a size\n");
        assert_eq!(line, 2, "{msg}");

        // Comments and blank lines count toward the line number.
        let bad_value = "%%MatrixMarket matrix coordinate real general\n\
                         % comment\n\
                         \n\
                         2 2 2\n\
                         1 1 1.0\n\
                         2 2 oops\n";
        let (line, msg) = fail_line(bad_value);
        assert_eq!(line, 6);
        assert!(msg.contains("bad value"), "{msg}");

        let err = read_coo::<f64>(bad_value.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 6"), "{err}");
    }

    #[test]
    fn rejects_trailing_tokens_on_entry_lines() {
        // A general file with a symmetric-looking 4-token entry line:
        // silently ignoring the 4th token would hide a malformed file.
        let s = "%%MatrixMarket matrix coordinate real general\n\
                 2 2 1\n\
                 1 2 1.0 9.0\n";
        let (line, msg) = fail_line(s);
        assert_eq!(line, 3);
        assert!(msg.contains("trailing token '9.0'"), "{msg}");

        // Pattern files carry no value at all — a third token is trailing.
        let s = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2 1.0\n";
        let (line, msg) = fail_line(s);
        assert_eq!(line, 3);
        assert!(msg.contains("trailing"), "{msg}");
    }

    #[test]
    fn rejects_non_finite_values() {
        for bad in ["nan", "NaN", "inf", "-inf"] {
            let s = format!(
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 {bad}\n"
            );
            let (line, msg) = fail_line(&s);
            assert_eq!(line, 3, "value {bad}");
            assert!(msg.contains("non-finite"), "value {bad}: {msg}");
        }
        // f64 values that overflow f32 during conversion are equally fatal.
        let s = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 1e300\n";
        match read_coo::<f32>(s.as_bytes()).unwrap_err() {
            MmError::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("non-finite"), "{msg}");
            }
            MmError::Io(e) => panic!("expected parse error, got I/O: {e}"),
        }
        // ... but stays finite (and fine) as f64
        assert!(read_coo::<f64>(s.as_bytes()).is_ok());
    }
}
