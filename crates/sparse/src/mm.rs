//! MatrixMarket (`.mtx`) I/O — the interchange format of the SuiteSparse
//! Matrix Collection the paper draws its test matrices from (Table 3).
//!
//! Supports `matrix coordinate {real,integer,pattern} {general,symmetric}`.
//! Symmetric files store the lower triangle only; reading expands it.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the MatrixMarket reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O error.
    Io(std::io::Error),
    /// Structural problem with the file (message describes it).
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(m) => write!(f, "MatrixMarket parse error: {m}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Read a MatrixMarket coordinate matrix from a reader.
pub fn read_coo<T: Scalar>(reader: impl Read) -> Result<Coo<T>, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only coordinate format supported"));
    }
    let value_type = fields[3];
    if !matches!(value_type, "real" | "integer" | "pattern") {
        return Err(parse_err(format!("unsupported value type {value_type}")));
    }
    let symmetry = fields[4];
    let symmetric = match symmetry {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry {other}"))),
    };

    // Skip comments, read size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| s.parse().map_err(|_| parse_err("bad size line")))
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(parse_err("size line must be 'nrows ncols nnz'"));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = Coo::new(nrows, ncols);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad row index"))?;
        let j: usize = it
            .next()
            .ok_or_else(|| parse_err("short entry line"))?
            .parse()
            .map_err(|_| parse_err("bad col index"))?;
        let v: f64 = if value_type == "pattern" {
            1.0
        } else {
            it.next()
                .ok_or_else(|| parse_err("missing value"))?
                .parse()
                .map_err(|_| parse_err("bad value"))?
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!("index out of range: {i} {j}")));
        }
        let (r, c) = ((i - 1) as u32, (j - 1) as u32);
        let val = T::from_f64(v);
        if symmetric {
            coo.push_sym(r, c, val);
        } else {
            coo.push(r, c, val);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo)
}

/// Read a MatrixMarket file into CSR.
pub fn read_csr_path<T: Scalar>(path: impl AsRef<Path>) -> Result<Csr<T>, MmError> {
    let f = std::fs::File::open(path)?;
    Ok(Csr::from_coo(read_coo(f)?))
}

/// Write a matrix as `matrix coordinate real general`.
pub fn write_csr<T: Scalar>(mut w: impl Write, m: &Csr<T>) -> Result<(), std::io::Error> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by linear-forest")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v.to_f64())?;
    }
    Ok(())
}

/// Write a matrix to a `.mtx` file.
pub fn write_csr_path<T: Scalar>(
    path: impl AsRef<Path>,
    m: &Csr<T>,
) -> Result<(), std::io::Error> {
    let f = std::fs::File::create(path)?;
    write_csr(std::io::BufWriter::new(f), m)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 2.0\n\
        1 2 -1.0\n\
        2 1 -1.5\n\
        3 3 4.0\n";

    #[test]
    fn reads_general() {
        let coo: Coo<f64> = read_coo(GENERAL.as_bytes()).unwrap();
        let m = Csr::from_coo(coo);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 0), -1.5);
    }

    #[test]
    fn reads_symmetric_expands() {
        let s = "%%MatrixMarket matrix coordinate real symmetric\n\
                 2 2 2\n\
                 1 1 5.0\n\
                 2 1 -3.0\n";
        let m: Csr<f64> = Csr::from_coo(read_coo(s.as_bytes()).unwrap());
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), -3.0);
        assert_eq!(m.get(1, 0), -3.0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn reads_pattern() {
        let s = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let m: Csr<f32> = Csr::from_coo(read_coo(s.as_bytes()).unwrap());
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn roundtrip_write_read() {
        let m: Csr<f64> = Csr::from_coo(read_coo(GENERAL.as_bytes()).unwrap());
        let mut buf = Vec::new();
        write_csr(&mut buf, &m).unwrap();
        let m2: Csr<f64> = Csr::from_coo(read_coo(buf.as_slice()).unwrap());
        assert_eq!(m, m2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_coo::<f64>("hello\n".as_bytes()).is_err());
        assert!(read_coo::<f64>("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
        let bad_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_coo::<f64>(bad_count.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_coo::<f64>(oob.as_bytes()).is_err());
    }
}
