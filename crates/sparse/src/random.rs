//! Random graph and matrix generators used by tests, property tests, and
//! the synthetic collection stand-ins.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::scalar::Scalar;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random undirected weighted graph as a symmetric matrix (no diagonal):
/// roughly `n · avg_degree / 2` distinct edges with weights uniform in
/// `(w_lo, w_hi]`.
pub fn random_symmetric<T: Scalar>(
    n: usize,
    avg_degree: f64,
    w_lo: f64,
    w_hi: f64,
    seed: u64,
) -> Csr<T> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut tries = 0usize;
    while seen.len() < m && tries < m * 20 {
        tries += 1;
        if n < 2 {
            break;
        }
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if !seen.insert(key) {
            continue;
        }
        let w = rng.random_range(w_lo..=w_hi);
        coo.push_sym(key.0, key.1, T::from_f64(w));
    }
    Csr::from_coo(coo)
}

/// Random symmetric diagonally dominant matrix (hence SPD for positive
/// diagonal): off-diagonals negative random, diagonal = Σ|off| + shift.
pub fn random_spd<T: Scalar>(n: usize, avg_degree: f64, shift: f64, seed: u64) -> Csr<T> {
    let off = random_symmetric::<T>(n, avg_degree, 0.1, 1.0, seed);
    let mut coo = Coo::new(n, n);
    for (r, c, v) in off.iter() {
        coo.push(r, c, -v.abs());
    }
    for i in 0..n {
        let rowsum: T = off.row(i).map(|(_, v)| v.abs()).sum();
        coo.push(i as u32, i as u32, rowsum + T::from_f64(shift));
    }
    Csr::from_coo(coo)
}

/// A uniformly random permutation (`perm[new] = old`).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p: Vec<u32> = (0..n as u32).collect();
    // Fisher–Yates
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// A random *linear forest* embedded as a symmetric matrix: the vertex set
/// is split into random paths of length ≥ 1 (in a random vertex order) with
/// strong weights `~1`, plus `noise_degree` weak random edges (`~1e-3`) per
/// vertex. Returns the matrix and the ground-truth list of paths (each a
/// sequence of vertex IDs). Useful for testing that extraction recovers
/// planted structure.
pub fn planted_linear_forest<T: Scalar>(
    n: usize,
    mean_path_len: usize,
    noise_degree: f64,
    seed: u64,
) -> (Csr<T>, Vec<Vec<u32>>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let order = random_permutation(n, seed ^ 0x9e37_79b9);
    let mut paths: Vec<Vec<u32>> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let len = rng.random_range(1..=(2 * mean_path_len).max(2)).min(n - i);
        paths.push(order[i..i + len].to_vec());
        i += len;
    }
    let mut coo = Coo::new(n, n);
    for p in &paths {
        for w in p.windows(2) {
            let strong = rng.random_range(0.5..1.5);
            coo.push_sym(w[0], w[1], T::from_f64(strong));
        }
    }
    let extra = (n as f64 * noise_degree / 2.0).round() as usize;
    let mut seen = std::collections::HashSet::new();
    for p in &paths {
        for w in p.windows(2) {
            seen.insert((w[0].min(w[1]), w[0].max(w[1])));
        }
    }
    let mut added = 0usize;
    let mut tries = 0usize;
    while added < extra && tries < extra * 30 && n >= 2 {
        tries += 1;
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if !seen.insert(key) {
            continue;
        }
        let weak = rng.random_range(1e-4..2e-3);
        coo.push_sym(key.0, key.1, T::from_f64(weak));
        added += 1;
    }
    (Csr::from_coo(coo), paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_symmetric_props() {
        let m: Csr<f64> = random_symmetric(500, 6.0, 0.0, 1.0, 1);
        assert!(m.is_symmetric());
        assert_eq!(m.diagonal().iter().filter(|&&d| d != 0.0).count(), 0);
        let deg = m.mean_degree();
        assert!((deg - 6.0).abs() < 1.0, "mean degree {deg}");
    }

    #[test]
    fn random_spd_is_diag_dominant() {
        let m: Csr<f64> = random_spd(300, 5.0, 0.5, 2);
        assert!(m.is_symmetric());
        for i in 0..m.nrows() {
            let d = m.get(i, i);
            let off: f64 = m.row(i).filter(|&(c, _)| c as usize != i).map(|(_, v)| v.abs()).sum();
            assert!(d >= off + 0.49, "row {i} not dominant: {d} vs {off}");
        }
    }

    #[test]
    fn permutation_is_bijection() {
        let p = random_permutation(1000, 3);
        let mut seen = vec![false; 1000];
        for &v in &p {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        // Deterministic for a fixed seed.
        assert_eq!(p, random_permutation(1000, 3));
        assert_ne!(p, random_permutation(1000, 4));
    }

    #[test]
    fn planted_forest_structure() {
        let (m, paths): (Csr<f64>, _) = planted_linear_forest(400, 8, 2.0, 5);
        assert!(m.is_symmetric());
        let total: usize = paths.iter().map(|p| p.len()).sum();
        assert_eq!(total, 400);
        // every planted strong edge present and strong
        for p in &paths {
            for w in p.windows(2) {
                let v = m.get(w[0] as usize, w[1] as usize);
                assert!(v >= 0.5, "planted edge lost");
            }
        }
    }
}
