//! Differential oracles: the parallel pipeline vs its sequential
//! references.
//!
//! Each stage of the parallel pipeline has an independent sequential
//! implementation in `lf-core` (`greedy_factor`,
//! `break_cycles_sequential`, `identify_paths_sequential`,
//! `extract_tridiagonal_reference`). The oracle runs both sides on the
//! same input and compares **invariant-level** properties:
//!
//! * the factor stage by validity, maximality and weight coverage
//!   (parallel and greedy factors legitimately differ edge-by-edge —
//!   Table 5 compares their coverage, so does the oracle);
//! * cycle breaking, path identification and extraction by exact
//!   equality — both sides remove the weakest edge per cycle with the
//!   same deterministic tie-break, so their outputs must agree
//!   bit-for-bit.

use crate::audit;
use lf_core::cycles::{break_cycles, break_cycles_sequential};
use lf_core::extract::{extract_tridiagonal, extract_tridiagonal_reference};
use lf_core::greedy::greedy_factor;
use lf_core::parallel::{try_parallel_factor, FactorConfig};
use lf_core::paths::{identify_paths, identify_paths_sequential};
use lf_core::permute::forest_permutation;
use lf_core::weight_coverage;
use lf_kernel::Device;
use lf_sparse::random::random_symmetric;
use lf_sparse::stencil::{aniso3, grid2d, grid3d, Stencil7, ANISO1, ANISO2, FIVE_POINT};
use lf_sparse::{Csr, Scalar};
use std::fmt;

/// Minimum acceptable ratio of parallel to greedy weight coverage.
/// Table 5 reports PAR/SEQ ≥ 0.97 on the paper's collection; the bound
/// here is loose enough for small random graphs where a handful of edges
/// decide the ratio, and tight enough to catch a broken factor stage.
pub const MIN_COVERAGE_RATIO: f64 = 0.85;

/// One differential comparison (one input graph).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleCase {
    /// Input label, e.g. `random(seed=3, n=200, deg=6)`.
    pub label: String,
    /// Disagreements found; empty means the case passed.
    pub failures: Vec<String>,
}

impl OracleCase {
    /// Whether parallel and sequential sides agreed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Outcome of a differential suite run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// All cases, in execution order.
    pub cases: Vec<OracleCase>,
}

impl OracleReport {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(OracleCase::passed)
    }

    /// Number of failing cases.
    pub fn num_failed(&self) -> usize {
        self.cases.iter().filter(|c| !c.passed()).count()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential oracle: {}/{} cases agree",
            self.cases.len() - self.num_failed(),
            self.cases.len()
        )?;
        for c in self.cases.iter().filter(|c| !c.passed()) {
            writeln!(f, "  FAIL {}", c.label)?;
            for msg in &c.failures {
                writeln!(f, "    {msg}")?;
            }
        }
        Ok(())
    }
}

/// Run the full parallel-vs-sequential comparison on one undirected
/// weight matrix `aprime` (as produced by [`lf_core::prepare_undirected`]).
pub fn differential_case<T: Scalar>(dev: &Device, aprime: &Csr<T>, label: &str) -> OracleCase {
    let mut failures = Vec::new();
    let cfg = FactorConfig::paper_default(2);

    // Stage 1: parallel factor vs greedy reference — invariant-level.
    let outcome = match try_parallel_factor(dev, aprime, &cfg) {
        Ok(o) => o,
        Err(e) => {
            return OracleCase {
                label: label.into(),
                failures: vec![format!("parallel factor failed: {e}")],
            }
        }
    };
    let par = outcome.factor;
    for v in audit::audit_factor(&par, aprime, 2, outcome.maximal) {
        failures.push(format!("parallel factor: {v}"));
    }
    let seq = greedy_factor(aprime, 2);
    if let Err(msg) = seq.validate(aprime) {
        failures.push(format!("greedy reference factor invalid: {msg}"));
    }
    let (cp, cs) = (weight_coverage(&par, aprime), weight_coverage(&seq, aprime));
    if cs > 0.0 && cp / cs < MIN_COVERAGE_RATIO {
        failures.push(format!(
            "parallel coverage {cp:.4} below {MIN_COVERAGE_RATIO} × greedy {cs:.4}"
        ));
    }

    // Stage 2: parallel vs sequential cycle breaking on the same factor —
    // identical removed-edge sets and identical surviving factors.
    let mut broken_par = par.clone();
    let rep_par = break_cycles(dev, &mut broken_par);
    let mut broken_seq = par.clone();
    let rep_seq = break_cycles_sequential(&mut broken_seq);
    let (mut rm_par, mut rm_seq) = (rep_par.removed.clone(), rep_seq.removed.clone());
    rm_par.sort_unstable();
    rm_seq.sort_unstable();
    if rm_par != rm_seq {
        failures.push(format!(
            "cycle breaking removed different edges: parallel {rm_par:?}, sequential {rm_seq:?}"
        ));
    }
    if broken_par != broken_seq {
        failures.push("post-break factors differ between parallel and sequential".into());
    }

    // Stage 3: parallel vs sequential path identification — exact equality.
    match (identify_paths(dev, &broken_par), identify_paths_sequential(&broken_seq)) {
        (Ok(pp), Ok(ps)) => {
            if pp != ps {
                failures.push("path IDs/positions differ between parallel and sequential".into());
            }
            // Stage 4/5: permutation + extraction vs reference extractor.
            let perm = forest_permutation(dev, &pp);
            for v in audit::audit_permutation(&broken_par, &pp, &perm) {
                failures.push(format!("permutation: {v}"));
            }
            let tri = extract_tridiagonal(dev, aprime, &broken_par, &perm);
            let want = extract_tridiagonal_reference(aprime, &broken_par, &perm);
            if tri != want {
                failures.push("extracted coefficients differ from sequential reference".into());
            }
        }
        (Err(e), _) => failures.push(format!("parallel path identification failed: {e}")),
        (_, Err(e)) => failures.push(format!("sequential path identification failed: {e}")),
    }

    OracleCase { label: label.into(), failures }
}

/// Cross-backend, cross-fusion differential: the model device and the
/// tuned CPU backend, each with the peephole fusion pass on and off, must
/// produce **bit-identical** forests (factor, removed cycle edges, path
/// IDs/positions, permutation), and the two backends must agree on the
/// `DeviceStats`-visible launch counts — the launch stream is a property
/// of the algorithm and fusion setting, never of the execution backend.
/// Fused runs must launch strictly fewer kernels than unfused ones.
///
/// Builds its own four devices (backend × fusion), so it takes no `dev`.
pub fn backend_case<T: Scalar>(aprime: &Csr<T>, label: &str) -> OracleCase {
    use lf_core::forest::extract_linear_forest;
    use lf_kernel::{backend, BackendKind, DeviceConfig};
    let cfg = FactorConfig::paper_default(2);
    let mut failures = Vec::new();
    let mut runs = Vec::new();
    for kind in [BackendKind::Model, BackendKind::Cpu] {
        for fuse in [true, false] {
            let dev = Device::with_backend(DeviceConfig::default(), backend::make(kind));
            dev.set_fusion(fuse);
            match extract_linear_forest(&dev, aprime, &cfg) {
                Ok((forest, _)) => runs.push((kind, fuse, forest, dev.stats())),
                Err(e) => failures.push(format!("{kind}/fuse={fuse}: pipeline failed: {e}")),
            }
        }
    }
    if failures.is_empty() {
        let (_, _, base, _) = &runs[0];
        for (kind, fuse, forest, _) in &runs[1..] {
            if forest.factor != base.factor {
                failures.push(format!("{kind}/fuse={fuse}: factor differs from model/fused"));
            }
            if forest.paths != base.paths {
                failures.push(format!("{kind}/fuse={fuse}: paths differ from model/fused"));
            }
            if forest.perm != base.perm {
                failures.push(format!("{kind}/fuse={fuse}: permutation differs from model/fused"));
            }
            if forest.cycles.removed != base.cycles.removed {
                failures.push(format!("{kind}/fuse={fuse}: removed cycle edges differ"));
            }
        }
        // runs order: (Model,fused) (Model,unfused) (Cpu,fused) (Cpu,unfused)
        let l: Vec<u64> = runs.iter().map(|(_, _, _, s)| s.launches).collect();
        if l[0] != l[2] {
            failures.push(format!("fused launch counts differ across backends: {} vs {}", l[0], l[2]));
        }
        if l[1] != l[3] {
            failures.push(format!("unfused launch counts differ across backends: {} vs {}", l[1], l[3]));
        }
        if l[0] >= l[1] {
            failures.push(format!("fused run did not launch fewer kernels: {} vs {}", l[0], l[1]));
        }
    }
    OracleCase { label: label.into(), failures }
}

/// Run the differential suite: `random_cases` seeded random graphs of
/// `n` vertices (varying density), plus the paper's 2D/3D model-problem
/// stencils, plus cross-backend/fusion equivalence cases
/// ([`backend_case`]) on one random and one stencil input. Returns one
/// [`OracleCase`] per input.
pub fn differential_suite(dev: &Device, random_cases: usize, n: usize) -> OracleReport {
    let mut cases = Vec::new();
    for seed in 0..random_cases as u64 {
        let deg = 3 + (seed % 6) as usize;
        let a: Csr<f64> = random_symmetric(n, deg as f64, 0.1, 10.0, seed);
        let ap = lf_core::prepare_undirected(&a);
        cases.push(differential_case(
            dev,
            &ap,
            &format!("random(seed={seed}, n={n}, deg={deg})"),
        ));
    }
    let side = (n as f64).sqrt().ceil().max(4.0) as usize;
    let stencils: [(&str, Csr<f64>); 4] = [
        ("grid2d/ANISO1", grid2d(side, side, &ANISO1)),
        ("grid2d/ANISO2", grid2d(side, side, &ANISO2)),
        ("grid2d/FIVE_POINT", grid2d(side, side, &FIVE_POINT)),
        ("aniso3", aniso3(side, side)),
    ];
    for (name, a) in stencils {
        let ap = lf_core::prepare_undirected(&a);
        cases.push(differential_case(dev, &ap, name));
    }
    let s3 = (n as f64).cbrt().ceil().max(3.0) as usize;
    let a3: Csr<f64> = grid3d(s3, s3, s3, &Stencil7::symmetric(6.0, -1.0, -1.0, -1.0));
    let ap3 = lf_core::prepare_undirected(&a3);
    cases.push(differential_case(dev, &ap3, "grid3d/poisson"));
    // Cross-backend/fusion equivalence on one random and one stencil input
    // (these build their own model/cpu × fused/unfused devices).
    let ar: Csr<f64> = random_symmetric(n, 4.0, 0.1, 10.0, 1234);
    cases.push(backend_case(
        &lf_core::prepare_undirected(&ar),
        &format!("backends(random, n={n})"),
    ));
    let astencil: Csr<f64> = grid2d(side, side, &ANISO2);
    cases.push(backend_case(
        &lf_core::prepare_undirected(&astencil),
        "backends(grid2d/ANISO2)",
    ));
    OracleReport { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_agrees() {
        let dev = Device::default();
        let report = differential_suite(&dev, 4, 120);
        assert!(report.passed(), "{report}");
        assert_eq!(report.cases.len(), 11);
        assert!(report.to_string().contains("11/11 cases agree"));
    }

    #[test]
    fn backend_case_catches_nothing_on_good_pipeline() {
        let a: Csr<f64> = grid2d(10, 10, &ANISO1);
        let case = backend_case(&lf_core::prepare_undirected(&a), "backends/test");
        assert!(case.passed(), "{:?}", case.failures);
    }

    #[test]
    fn pathological_inputs_do_not_panic() {
        let dev = Device::default();
        // empty graph, single vertex, single edge
        for nv in [0usize, 1, 2] {
            let a: Csr<f64> = random_symmetric(nv, 1.0, 0.5, 1.0, 9);
            let ap = lf_core::prepare_undirected(&a);
            let case = differential_case(&dev, &ap, &format!("tiny(n={nv})"));
            assert!(case.passed(), "{:?}", case.failures);
        }
    }
}
