//! The checked pipeline: `extract_linear_forest` /
//! `tridiagonal_from_matrix` with the stage auditors of [`crate::audit`]
//! installed between stages.
//!
//! The checked variants mirror the phase structure (and device-stats
//! accounting) of the unchecked pipeline; every audit runs in its own
//! tracer span and the total violation count is emitted as an
//! `audit_violations` trace metric, so checked runs remain analyzable
//! with `lf-trace` tooling.

use crate::audit::{self, Stage, Violation};
use lf_core::cycles::break_cycles;
use lf_core::extract::{extract_tridiagonal, Tridiag};
use lf_core::parallel::{try_parallel_factor, FactorConfig};
use lf_core::paths::identify_paths;
use lf_core::permute::forest_permutation;
use lf_core::{prepare_undirected, Factor, LinearForest, PipelineError, PipelineTimings};
use lf_kernel::Device;
use lf_sparse::{Csr, Scalar};
use std::fmt;

/// A deliberate corruption injected into intermediate pipeline state —
/// the test hook behind the audit layer's own regression tests. Faults
/// only exist to prove the auditors catch real corruption; production
/// callers use [`CheckOptions::default`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Drop one direction of the first factor edge (breaks mutuality).
    BreakMutuality,
    /// Perturb one stored factor weight (breaks weight provenance).
    CorruptWeight,
    /// Swap two entries of the tridiagonalizing permutation.
    SwapPermutation,
}

/// Options for a checked pipeline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckOptions {
    /// Corruption to inject after the named stage (tests only).
    pub fault: Option<Fault>,
}

/// Summary of a clean checked run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Stages audited, in pipeline order.
    pub stages: Vec<Stage>,
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stages audited, 0 violations (", self.stages.len())?;
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
        }
        f.write_str(")")
    }
}

/// A checked pipeline failure: either the pipeline itself reported a
/// typed error, or an auditor found invariant violations.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckError {
    /// The underlying pipeline failed before any invariant was violated.
    Pipeline(PipelineError),
    /// A stage auditor found violations; the pipeline was stopped there.
    Audit {
        /// Stage whose postcondition failed.
        stage: Stage,
        /// The violations found (capped per stage).
        violations: Vec<Violation>,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            CheckError::Audit { stage, violations } => {
                writeln!(
                    f,
                    "invariant audit failed after stage '{stage}' \
                     ({} violation{}):",
                    violations.len(),
                    if violations.len() == 1 { "" } else { "s" }
                )?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for CheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckError::Pipeline(e) => Some(e),
            CheckError::Audit { .. } => None,
        }
    }
}

impl From<PipelineError> for CheckError {
    fn from(e: PipelineError) -> Self {
        CheckError::Pipeline(e)
    }
}

/// Records a checked-pipeline failure in the flight ring (one `audit` or
/// `pipeline` typed-error event) before handing it back to the caller.
/// The disabled path is one relaxed load, same contract as the tracer.
fn flight_err(e: CheckError) -> CheckError {
    if lf_flight::enabled() {
        let kind = match &e {
            CheckError::Pipeline(_) => "pipeline",
            CheckError::Audit { .. } => "audit",
        };
        lf_flight::record(lf_flight::FlightEvent::Error {
            kind: kind.to_string(),
            message: e.to_string(),
        });
    }
    e
}

/// Runs one auditor inside a tracer span and turns its findings into a
/// [`CheckError::Audit`]. `state_hash` fingerprints the pipeline state
/// under audit and is evaluated only when violations are found and the
/// flight recorder is on (it hashes O(N) state).
fn gate(
    dev: &Device,
    report: &mut CheckReport,
    stage: Stage,
    violations: Vec<Violation>,
    state_hash: impl FnOnce() -> u64,
) -> Result<(), CheckError> {
    let tracer = dev.tracer();
    if tracer.is_active() {
        tracer.metric("audit_violations", violations.len() as f64);
    }
    if violations.is_empty() {
        report.stages.push(stage);
        Ok(())
    } else {
        if lf_flight::enabled() {
            lf_flight::record(lf_flight::FlightEvent::Audit {
                stage: stage.name().to_string(),
                violations: violations.len() as u64,
                state_hash: state_hash(),
            });
        }
        Err(flight_err(CheckError::Audit { stage, violations }))
    }
}

fn inject_factor_fault<T: Scalar>(factor: &mut Factor<T>, fault: Fault) {
    let mut cols = factor.slot_cols().to_vec();
    let mut ws = factor.slot_weights().to_vec();
    let Some(hit) = cols.iter().position(|&c| c != lf_core::INVALID) else {
        return;
    };
    match fault {
        Fault::BreakMutuality => cols[hit] = lf_core::INVALID,
        Fault::CorruptWeight => ws[hit] += T::from_f64(1.0),
        Fault::SwapPermutation => return,
    }
    *factor = Factor::from_slots(factor.num_vertices(), factor.degree_bound(), cols, ws);
}

/// [`lf_core::extract_linear_forest`] with stage audits: every pipeline
/// stage's postconditions are validated before the next stage runs.
///
/// # Errors
///
/// [`CheckError::Pipeline`] for the typed errors of the unchecked
/// pipeline; [`CheckError::Audit`] with the violating stage and findings
/// when an invariant audit fails.
pub fn extract_linear_forest_checked<T: Scalar>(
    dev: &Device,
    aprime: &Csr<T>,
    cfg: &FactorConfig,
    opts: &CheckOptions,
) -> Result<(LinearForest<T>, PipelineTimings, CheckReport), CheckError> {
    if cfg.n != 2 {
        return Err(flight_err(PipelineError::NotPathFactor { n: cfg.n }.into()));
    }
    let mut report = CheckReport::default();
    let mut timings = PipelineTimings::default();
    let tracer = dev.tracer().clone();
    let _forest_span = tracer.span("forest_checked");

    {
        let _s = tracer.span("audit_input");
        let v = audit::audit_input(aprime);
        gate(dev, &mut report, Stage::Input, v, || 0)?;
    }

    let (outcome, t_factor) = dev.scoped(|| try_parallel_factor(dev, aprime, cfg));
    let outcome = outcome.map_err(|e| flight_err(e.into()))?;
    timings.factor = t_factor;
    let mut factor = outcome.factor;
    if matches!(opts.fault, Some(Fault::BreakMutuality | Fault::CorruptWeight)) {
        inject_factor_fault(&mut factor, opts.fault.unwrap());
    }
    {
        let _s = tracer.span("audit_factor");
        let v = audit::audit_factor(&factor, aprime, cfg.n, outcome.maximal);
        gate(dev, &mut report, Stage::Factor, v, || factor.fingerprint())?;
    }

    let pre_break = factor.clone();
    let (cycles, t_cyc) = dev.scoped(|| {
        let _s = tracer.span("identify_cycles");
        break_cycles(dev, &mut factor)
    });
    timings.identify_cycles = t_cyc;
    {
        let _s = tracer.span("audit_cycle_break");
        let v = audit::audit_cycle_break(&pre_break, &factor, &cycles);
        gate(dev, &mut report, Stage::CycleBreak, v, || factor.fingerprint())?;
    }

    let (paths, t_paths) = dev.scoped(|| {
        let _s = tracer.span("identify_paths");
        identify_paths(dev, &factor)
    });
    timings.identify_paths = t_paths;
    let paths = paths.map_err(|e| flight_err(PipelineError::from(e).into()))?;
    {
        let _s = tracer.span("audit_paths");
        let v = audit::audit_paths(&factor, &paths);
        gate(dev, &mut report, Stage::Paths, v, || factor.fingerprint())?;
    }

    let (mut perm, t_perm) = dev.scoped(|| {
        let _s = tracer.span("permutation");
        forest_permutation(dev, &paths)
    });
    timings.permutation = t_perm;
    if opts.fault == Some(Fault::SwapPermutation) && perm.len() >= 2 {
        let last = perm.len() - 1;
        perm.swap(0, last);
    }
    {
        let _s = tracer.span("audit_permutation");
        let v = audit::audit_permutation(&factor, &paths, &perm);
        gate(dev, &mut report, Stage::Permutation, v, || factor.fingerprint())?;
    }

    if tracer.is_active() {
        tracer.metric("cycles_broken", cycles.cycles as f64);
        tracer.metric("num_paths", paths.num_paths() as f64);
        tracer.metric("audit_stages", report.stages.len() as f64);
    }

    Ok((
        LinearForest {
            factor,
            paths,
            perm,
            cycles,
            factor_iterations: outcome.iterations,
        },
        timings,
        report,
    ))
}

/// [`lf_core::tridiagonal_from_matrix`] with stage audits, including the
/// final extraction-vs-reference comparison on the original matrix.
///
/// # Errors
///
/// Same as [`extract_linear_forest_checked`].
pub fn tridiagonal_from_matrix_checked<T: Scalar>(
    dev: &Device,
    a: &Csr<T>,
    cfg: &FactorConfig,
    opts: &CheckOptions,
) -> Result<(Tridiag<T>, LinearForest<T>, PipelineTimings, CheckReport), CheckError> {
    let aprime = prepare_undirected(a);
    let (forest, mut timings, mut report) =
        extract_linear_forest_checked(dev, &aprime, cfg, opts)?;
    let (tri, t_ex) = dev.scoped(|| {
        let _s = dev.tracer().span("extraction");
        extract_tridiagonal(dev, a, &forest.factor, &forest.perm)
    });
    timings.extraction = t_ex;
    {
        let _s = dev.tracer().span("audit_extraction");
        let v = audit::audit_extraction(a, &forest.factor, &forest.perm, &tri);
        gate(dev, &mut report, Stage::Extraction, v, || forest.factor.fingerprint())?;
    }
    Ok((tri, forest, timings, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::stencil::{grid2d, ANISO1, ANISO2};

    #[test]
    fn clean_run_audits_every_stage() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(10, 10, &ANISO2);
        let (tri, forest, timings, report) =
            tridiagonal_from_matrix_checked(&dev, &a, &FactorConfig::paper_default(2), &CheckOptions::default())
                .unwrap();
        assert_eq!(tri.len(), a.nrows());
        assert!(forest.num_paths() > 0);
        assert!(timings.total_model_s() > 0.0);
        assert_eq!(
            report.stages,
            vec![
                Stage::Input,
                Stage::Factor,
                Stage::CycleBreak,
                Stage::Paths,
                Stage::Permutation,
                Stage::Extraction
            ]
        );
        assert!(report.to_string().contains("0 violations"));
    }

    #[test]
    fn injected_faults_are_caught_as_structured_errors() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(10, 10, &ANISO1);
        let ap = prepare_undirected(&a);
        for (fault, want_stage) in [
            (Fault::BreakMutuality, Stage::Factor),
            (Fault::CorruptWeight, Stage::Factor),
            (Fault::SwapPermutation, Stage::Permutation),
        ] {
            let opts = CheckOptions { fault: Some(fault) };
            let err = extract_linear_forest_checked(
                &dev,
                &ap,
                &FactorConfig::paper_default(2),
                &opts,
            )
            .unwrap_err();
            match err {
                CheckError::Audit { stage, violations } => {
                    assert_eq!(stage, want_stage, "{fault:?}");
                    assert!(!violations.is_empty());
                }
                other => panic!("{fault:?}: expected audit error, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_degree_bound_is_a_pipeline_error() {
        let dev = Device::default();
        let a: Csr<f64> = grid2d(6, 6, &ANISO1);
        let err = extract_linear_forest_checked(
            &dev,
            &prepare_undirected(&a),
            &FactorConfig::paper_default(3),
            &CheckOptions::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            CheckError::Pipeline(PipelineError::NotPathFactor { n: 3 })
        );
        // display carries the inner message, no panic anywhere
        assert!(err.to_string().contains("[0,2]") || err.to_string().contains("n = 3"));
    }
}
