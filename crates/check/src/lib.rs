//! # lf-check — correctness subsystem for the linear-forest pipeline
//!
//! Three layers of defense against silent corruption in the parallel
//! pipeline of `lf-core`:
//!
//! 1. **Invariant audits** ([`audit`]): per-stage validators that check
//!    the paper's structural invariants after every pipeline stage —
//!    factor mutuality/degree-bound/maximality and weight provenance,
//!    post-break acyclicity with exactly one removal per cycle, path
//!    ID/position consistency, permutation validity and tridiagonality,
//!    and extracted coefficients against the sequential reference
//!    extractor. Violations are reported as structured
//!    [`audit::Violation`] values, never panics.
//! 2. **Checked pipeline** ([`pipeline`]): drop-in fallible variants of
//!    [`lf_core::extract_linear_forest`] /
//!    [`lf_core::tridiagonal_from_matrix`] that install the auditors
//!    between stages (`lf --check`, `repro --check`). A [`pipeline::Fault`]
//!    injection hook lets tests corrupt intermediate state and assert the
//!    audits catch it.
//! 3. **Differential oracles** ([`oracle`]): harness running the parallel
//!    pipeline against the sequential references (`greedy_factor`,
//!    `break_cycles_sequential`, `identify_paths_sequential`,
//!    `extract_tridiagonal_reference`) on seeded random graphs, stencils
//!    and the synthetic collection, comparing invariant-level properties
//!    (coverage, removed-edge sets, path structure, coefficients).
//!
//! ```
//! use lf_check::prelude::*;
//! use lf_core::prelude::*;
//! use lf_kernel::Device;
//! use lf_sparse::prelude::*;
//!
//! let dev = Device::default();
//! let a: Csr<f64> = grid2d(12, 12, &ANISO1);
//! let (forest, _timings, report) = extract_linear_forest_checked(
//!     &dev,
//!     &prepare_undirected(&a),
//!     &FactorConfig::paper_default(2),
//!     &CheckOptions::default(),
//! ).expect("audited pipeline is clean on a stencil");
//! assert!(forest.num_paths() > 0);
//! assert_eq!(report.stages.len(), 5);
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod oracle;
pub mod pipeline;

pub use audit::{Stage, Violation};
pub use oracle::{backend_case, differential_case, differential_suite, OracleCase, OracleReport};
pub use pipeline::{
    extract_linear_forest_checked, tridiagonal_from_matrix_checked, CheckError, CheckOptions,
    CheckReport, Fault,
};

/// Commonly used items.
pub mod prelude {
    pub use crate::audit::{Stage, Violation};
    pub use crate::oracle::{differential_suite, OracleReport};
    pub use crate::pipeline::{
        extract_linear_forest_checked, tridiagonal_from_matrix_checked, CheckError, CheckOptions,
        CheckReport,
    };
}
