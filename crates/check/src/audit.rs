//! Per-stage invariant validators.
//!
//! Each `audit_*` function checks the structural invariants one pipeline
//! stage is supposed to establish (paper Sec. 2–3) and returns the
//! violations it found as structured values. The auditors never panic and
//! never mutate their inputs; the checked pipeline in [`crate::pipeline`]
//! wires them between stages.
//!
//! To keep checked runs readable on badly corrupted state, each auditor
//! stops collecting after [`MAX_VIOLATIONS`] findings.

use lf_core::cycles::CycleReport;
use lf_core::extract::{extract_tridiagonal_reference, Tridiag};
use lf_core::paths::{identify_paths_sequential, PathInfo};
use lf_core::permute::is_tridiagonalizing;
use lf_core::Factor;
use lf_sparse::{Csr, Scalar};
use std::fmt;

/// Cap on violations collected per stage — enough to diagnose, not enough
/// to flood the report when an entire buffer is corrupted.
pub const MAX_VIOLATIONS: usize = 16;

/// The pipeline stage an audit (or a [`Violation`]) belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The undirected weight matrix `A'` fed into the factor stage.
    Input,
    /// The parallel [0,2]-factor (Algorithm 2).
    Factor,
    /// Cycle identification + weakest-edge removal.
    CycleBreak,
    /// Path ID/position assignment (Algorithm 3).
    Paths,
    /// The tridiagonalizing permutation.
    Permutation,
    /// Coefficient extraction from the original matrix.
    Extraction,
}

impl Stage {
    /// Stable lowercase name (used in trace metrics and CLI output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Input => "input",
            Stage::Factor => "factor",
            Stage::CycleBreak => "cycle_break",
            Stage::Paths => "paths",
            Stage::Permutation => "permutation",
            Stage::Extraction => "extraction",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violated invariant, attributed to a pipeline stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stage whose postcondition failed.
    pub stage: Stage,
    /// Human-readable description of the failed invariant.
    pub detail: String,
}

impl Violation {
    fn new(stage: Stage, detail: impl Into<String>) -> Self {
        Self { stage, detail: detail.into() }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

/// Collects violations for one stage with the [`MAX_VIOLATIONS`] cap.
struct Auditor {
    stage: Stage,
    out: Vec<Violation>,
}

impl Auditor {
    fn new(stage: Stage) -> Self {
        Self { stage, out: Vec::new() }
    }

    fn full(&self) -> bool {
        self.out.len() >= MAX_VIOLATIONS
    }

    fn report(&mut self, detail: impl Into<String>) {
        if !self.full() {
            self.out.push(Violation::new(self.stage, detail));
        }
    }

    fn finish(self) -> Vec<Violation> {
        self.out
    }
}

/// Audit the undirected weight matrix `A'` the pipeline runs on: square,
/// all-finite non-negative weights, empty diagonal, symmetric (the output
/// contract of [`lf_core::prepare_undirected`]).
pub fn audit_input<T: Scalar>(aprime: &Csr<T>) -> Vec<Violation> {
    let mut a = Auditor::new(Stage::Input);
    if aprime.nrows() != aprime.ncols() {
        a.report(format!(
            "matrix is not square: {}x{}",
            aprime.nrows(),
            aprime.ncols()
        ));
        return a.finish();
    }
    for (i, j, v) in aprime.iter() {
        if a.full() {
            break;
        }
        let w = v.to_f64();
        if !w.is_finite() {
            a.report(format!("non-finite weight {w:e} at ({i}, {j})"));
        } else if w < 0.0 {
            a.report(format!("negative weight {w:e} at ({i}, {j}) in A'"));
        }
        if i == j {
            a.report(format!("diagonal entry at ({i}, {i}) — A' must be hollow"));
        }
    }
    if !a.full() && !aprime.is_symmetric() {
        a.report("A' is not symmetric");
    }
    a.finish()
}

/// Audit a [0,n]-factor against the graph it was computed from:
/// mutual partnerships, degree bound, every factor weight present in `A'`
/// with the exact stored value, and (when the factor computation reported
/// convergence) maximality.
pub fn audit_factor<T: Scalar>(
    factor: &Factor<T>,
    aprime: &Csr<T>,
    n: usize,
    expect_maximal: bool,
) -> Vec<Violation> {
    let mut a = Auditor::new(Stage::Factor);
    if factor.degree_bound() != n {
        a.report(format!(
            "degree bound {} does not match configured n = {n}",
            factor.degree_bound()
        ));
    }
    if factor.num_vertices() != aprime.nrows() {
        a.report(format!(
            "factor has {} vertices, graph has {}",
            factor.num_vertices(),
            aprime.nrows()
        ));
        return a.finish();
    }
    // Mutuality, self-loops, duplicates, degree, edge existence.
    if let Err(msg) = factor.validate(aprime) {
        a.report(msg);
    }
    // Weight provenance: every stored slot weight must equal the A' entry
    // of its edge bit-for-bit (the pipeline only ever copies weights).
    'rows: for v in 0..factor.num_vertices() {
        for (w, x) in factor.partners(v) {
            if a.full() {
                break 'rows;
            }
            if (w as usize) < aprime.nrows() && w as usize != v {
                let aw = aprime.get(v, w as usize);
                if x.total_cmp(aw) != std::cmp::Ordering::Equal {
                    a.report(format!(
                        "edge ({v}, {w}) stores weight {:e} but A' has {:e}",
                        x.to_f64(),
                        aw.to_f64()
                    ));
                }
            }
        }
    }
    if expect_maximal && !a.full() && !factor.is_maximal(aprime) {
        a.report("factor reported maximal but an edge can still be added");
    }
    a.finish()
}

/// Audit cycle breaking: the post-break factor must be acyclic, each
/// removed edge must have existed before and be gone after, exactly one
/// edge is removed per reported cycle, and all surviving edges are
/// untouched.
pub fn audit_cycle_break<T: Scalar>(
    pre: &Factor<T>,
    post: &Factor<T>,
    report: &CycleReport,
) -> Vec<Violation> {
    let mut a = Auditor::new(Stage::CycleBreak);
    if report.removed.len() != report.cycles {
        a.report(format!(
            "{} cycles reported but {} edges removed — one removal per cycle",
            report.cycles,
            report.removed.len()
        ));
    }
    for &(u, v) in &report.removed {
        if a.full() {
            break;
        }
        if !pre.contains(u as usize, v) || !pre.contains(v as usize, u) {
            a.report(format!("removed edge ({u}, {v}) was not in the factor"));
        }
        if post.contains(u as usize, v) || post.contains(v as usize, u) {
            a.report(format!("removed edge ({u}, {v}) still present after breaking"));
        }
    }
    let pre_edges = pre.edges().len();
    let post_edges = post.edges().len();
    if pre_edges != post_edges + report.removed.len() {
        a.report(format!(
            "edge count {pre_edges} -> {post_edges} but {} removals reported",
            report.removed.len()
        ));
    }
    // Surviving edges must be byte-identical to the pre-break factor.
    'edges: for (u, v, w) in post.edges() {
        if a.full() {
            break 'edges;
        }
        match pre.partners(u as usize).find(|&(p, _)| p == v) {
            None => a.report(format!("edge ({u}, {v}) appeared during cycle breaking")),
            Some((_, pw)) if pw.total_cmp(w) != std::cmp::Ordering::Equal => {
                a.report(format!("edge ({u}, {v}) changed weight during cycle breaking"))
            }
            _ => {}
        }
    }
    if !a.full() {
        if let Err(e) = identify_paths_sequential(post) {
            a.report(format!("factor still cyclic after breaking: {e}"));
        }
    }
    a.finish()
}

/// Audit path identification: IDs and positions must describe the
/// connected components of the (acyclic) factor — canonical self-ID
/// endpoints at position 1, adjacent vertices at adjacent positions on
/// the same path, and per-path positions forming a contiguous `1..=len`.
pub fn audit_paths<T: Scalar>(factor: &Factor<T>, paths: &PathInfo) -> Vec<Violation> {
    let mut a = Auditor::new(Stage::Paths);
    let nv = factor.num_vertices();
    if paths.len() != nv {
        a.report(format!("path info covers {} vertices, factor has {nv}", paths.len()));
        return a.finish();
    }
    for v in 0..nv {
        if a.full() {
            break;
        }
        let id = paths.path_id[v] as usize;
        let pos = paths.position[v];
        if id >= nv {
            a.report(format!("vertex {v}: path ID {id} out of range"));
            continue;
        }
        if pos < 1 {
            a.report(format!("vertex {v}: position {pos} < 1"));
        }
        if paths.path_id[id] as usize != id || paths.position[id] != 1 {
            a.report(format!(
                "vertex {v}: path ID {id} is not a canonical endpoint \
                 (its id = {}, position = {})",
                paths.path_id[id], paths.position[id]
            ));
        }
    }
    // Factor edges connect consecutive positions on the same path.
    'edges: for (u, v, _) in factor.edges() {
        if a.full() {
            break 'edges;
        }
        let (u, v) = (u as usize, v as usize);
        if paths.path_id[u] != paths.path_id[v] {
            a.report(format!(
                "edge ({u}, {v}) spans paths {} and {}",
                paths.path_id[u], paths.path_id[v]
            ));
        }
        let (pu, pv) = (paths.position[u], paths.position[v]);
        if pu.abs_diff(pv) != 1 {
            a.report(format!(
                "edge ({u}, {v}) positions {pu} and {pv} are not adjacent"
            ));
        }
    }
    // Per path, positions are exactly 1..=len (each exactly once).
    if !a.full() {
        let mut len = vec![0u32; nv];
        let mut pos_sum = vec![0u64; nv];
        for v in 0..nv {
            let id = paths.path_id[v] as usize;
            if id < nv {
                len[id] += 1;
                pos_sum[id] += paths.position[v] as u64;
            }
        }
        for id in 0..nv {
            if a.full() {
                break;
            }
            let l = len[id] as u64;
            if l > 0 && pos_sum[id] != l * (l + 1) / 2 {
                a.report(format!(
                    "path {id}: positions of its {l} vertices are not 1..={l}"
                ));
            }
        }
    }
    a.finish()
}

/// Audit the tridiagonalizing permutation: a valid bijection, sorted by
/// `(path ID, position)`, under which the factor adjacency has bandwidth
/// one.
pub fn audit_permutation<T: Scalar>(
    factor: &Factor<T>,
    paths: &PathInfo,
    perm: &[u32],
) -> Vec<Violation> {
    let mut a = Auditor::new(Stage::Permutation);
    let nv = factor.num_vertices();
    if perm.len() != nv {
        a.report(format!("permutation length {} != {nv}", perm.len()));
        return a.finish();
    }
    let mut seen = vec![false; nv];
    for (k, &old) in perm.iter().enumerate() {
        if a.full() {
            break;
        }
        if (old as usize) >= nv {
            a.report(format!("perm[{k}] = {old} out of range"));
        } else if std::mem::replace(&mut seen[old as usize], true) {
            a.report(format!("perm[{k}] = {old} duplicated — not a bijection"));
        }
    }
    if paths.len() == nv {
        for k in 1..perm.len() {
            if a.full() {
                break;
            }
            let (p, q) = (perm[k - 1] as usize, perm[k] as usize);
            if p >= nv || q >= nv {
                continue;
            }
            let kp = (paths.path_id[p], paths.position[p]);
            let kq = (paths.path_id[q], paths.position[q]);
            if kp >= kq {
                a.report(format!(
                    "perm not sorted by (path, position): \
                     slot {} holds {:?}, slot {k} holds {:?}",
                    k - 1,
                    kp,
                    kq
                ));
            }
        }
    }
    if !a.full() && !is_tridiagonalizing(factor, perm) {
        a.report("factor adjacency is not tridiagonal under the permutation");
    }
    a.finish()
}

/// Audit extracted coefficients against the sequential reference
/// extractor on the **original** matrix.
pub fn audit_extraction<T: Scalar, U: Scalar>(
    a_orig: &Csr<U>,
    factor: &Factor<T>,
    perm: &[u32],
    tri: &Tridiag<U>,
) -> Vec<Violation> {
    let mut a = Auditor::new(Stage::Extraction);
    let want = extract_tridiagonal_reference(a_orig, factor, perm);
    if tri.len() != want.len() {
        a.report(format!(
            "tridiagonal length {} != reference {}",
            tri.len(),
            want.len()
        ));
        return a.finish();
    }
    for k in 0..tri.len() {
        if a.full() {
            break;
        }
        if tri.d[k].total_cmp(want.d[k]) != std::cmp::Ordering::Equal {
            a.report(format!(
                "d[{k}] = {:e}, reference {:e}",
                tri.d[k].to_f64(),
                want.d[k].to_f64()
            ));
        }
        if k + 1 < tri.len() {
            if tri.dl[k].total_cmp(want.dl[k]) != std::cmp::Ordering::Equal {
                a.report(format!(
                    "dl[{k}] = {:e}, reference {:e}",
                    tri.dl[k].to_f64(),
                    want.dl[k].to_f64()
                ));
            }
            if tri.du[k].total_cmp(want.du[k]) != std::cmp::Ordering::Equal {
                a.report(format!(
                    "du[{k}] = {:e}, reference {:e}",
                    tri.du[k].to_f64(),
                    want.du[k].to_f64()
                ));
            }
        }
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_core::cycles::break_cycles_sequential;
    use lf_core::greedy::greedy_factor;
    use lf_core::prepare_undirected;
    use lf_sparse::stencil::{grid2d, ANISO1};

    fn clean_pipeline() -> (Csr<f64>, Factor<f64>, PathInfo) {
        let a: Csr<f64> = grid2d(8, 8, &ANISO1);
        let ap = prepare_undirected(&a);
        let mut f = greedy_factor(&ap, 2);
        break_cycles_sequential(&mut f);
        let p = identify_paths_sequential(&f).unwrap();
        (ap, f, p)
    }

    #[test]
    fn clean_stages_have_no_violations() {
        let (ap, f, p) = clean_pipeline();
        assert!(audit_input(&ap).is_empty());
        // the broken factor is no longer maximal — audit without the flag
        assert!(audit_factor(&f, &ap, 2, false).is_empty());
        assert!(audit_paths(&f, &p).is_empty());
        // maximality holds on the factor before cycle breaking
        let pre = greedy_factor(&prepare_undirected(&grid2d::<f64>(8, 8, &ANISO1)), 2);
        assert!(audit_factor(&pre, &ap, 2, true).is_empty());
    }

    #[test]
    fn broken_mutuality_is_caught() {
        let (ap, f, _) = clean_pipeline();
        // drop one direction of the first edge via the raw-slot constructor
        let mut cols = f.slot_cols().to_vec();
        let ws = f.slot_weights().to_vec();
        let hit = cols.iter().position(|&c| c != lf_core::INVALID).unwrap();
        cols[hit] = lf_core::INVALID;
        let bad = Factor::from_slots(f.num_vertices(), 2, cols, ws);
        let v = audit_factor(&bad, &ap, 2, false);
        assert!(!v.is_empty(), "one-sided edge must violate mutuality");
        assert!(v.iter().all(|x| x.stage == Stage::Factor));
    }

    #[test]
    fn wrong_weight_is_caught() {
        let (ap, f, _) = clean_pipeline();
        let cols = f.slot_cols().to_vec();
        let mut ws = f.slot_weights().to_vec();
        let hit = cols.iter().position(|&c| c != lf_core::INVALID).unwrap();
        ws[hit] += 1.0;
        let bad = Factor::from_slots(f.num_vertices(), 2, cols, ws);
        let v = audit_factor(&bad, &ap, 2, false);
        assert!(v.iter().any(|x| x.detail.contains("stores weight")));
    }

    #[test]
    fn phantom_removal_is_caught() {
        let (_, f, _) = clean_pipeline();
        let report = CycleReport { cycles: 1, removed: vec![(0, 1)] };
        let v = audit_cycle_break(&f, &f, &report);
        assert!(
            v.iter().any(|x| x.detail.contains("still present"))
                || v.iter().any(|x| x.detail.contains("edge count")),
            "removal that never happened must be flagged: {v:?}"
        );
    }

    #[test]
    fn scrambled_positions_are_caught() {
        let (_, f, mut p) = clean_pipeline();
        // swap two positions on some length>=2 path
        let (u, v, _) = f.edges()[0];
        p.position.swap(u as usize, v as usize);
        let viol = audit_paths(&f, &p);
        assert!(!viol.is_empty());
    }

    #[test]
    fn bad_permutation_is_caught() {
        let (_, f, p) = clean_pipeline();
        let mut perm: Vec<u32> = (0..p.len() as u32).collect();
        perm.sort_by_key(|&v| (p.path_id[v as usize], p.position[v as usize]));
        assert!(audit_permutation(&f, &p, &perm).is_empty());
        perm.swap(0, p.len() - 1);
        let v = audit_permutation(&f, &p, &perm);
        assert!(!v.is_empty());
    }

    #[test]
    fn violation_display_names_stage() {
        let v = Violation::new(Stage::CycleBreak, "boom");
        assert_eq!(v.to_string(), "[cycle_break] boom");
    }
}
