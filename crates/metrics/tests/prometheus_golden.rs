//! Golden test for the Prometheus text exposition: build a registry that
//! exercises every metric kind, then parse the output line-by-line with a
//! strict grammar check (HELP/TYPE comments, sample lines, label syntax,
//! histogram suffix discipline) — the kind of validation a real scraper
//! performs.

use lf_metrics::{Registry, Unit};
use std::collections::HashMap;

fn is_valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_' || c == ':') == Some(true)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse `{k="v",...}` returning the label map; panics on malformed syntax.
fn parse_labels(s: &str) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| panic!("bad label block: {s}"));
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = rest.find('=').unwrap_or_else(|| panic!("label missing '=': {rest}"));
        let key = &rest[..eq];
        assert!(is_valid_name(key), "bad label name: {key}");
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .unwrap_or_else(|| panic!("label value not quoted: {rest}"));
        // Find the closing quote, honoring backslash escapes.
        let mut val = String::new();
        let mut chars = rest.char_indices();
        let end = loop {
            let (i, c) = chars.next().unwrap_or_else(|| panic!("unterminated label value"));
            match c {
                '\\' => {
                    let (_, e) = chars.next().expect("dangling escape");
                    assert!(matches!(e, '\\' | '"' | 'n'), "bad escape: \\{e}");
                    val.push(e);
                }
                '"' => break i,
                c => val.push(c),
            }
        };
        out.insert(key.to_string(), val);
        rest = &rest[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    out
}

struct Sample {
    name: String,
    labels: HashMap<String, String>,
    value: f64,
}

fn parse_sample(line: &str) -> Sample {
    let (name_part, value_part) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line}"));
    let value = match value_part {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().unwrap_or_else(|_| panic!("bad sample value {v:?} in: {line}")),
    };
    let (name, labels) = match name_part.find('{') {
        Some(i) => (&name_part[..i], parse_labels(&name_part[i..])),
        None => (name_part, HashMap::new()),
    };
    assert!(is_valid_name(name), "bad metric name: {name}");
    Sample {
        name: name.to_string(),
        labels,
        value,
    }
}

#[test]
fn exposition_parses_line_by_line() {
    let r = Registry::new();
    r.counter("lf_jobs_total", "Jobs processed by the service.").add(7);
    r.counter_with("lf_batch_close_total", "Batch close reasons.", ("reason", "deadline"))
        .add(2);
    r.counter_with("lf_batch_close_total", "Batch close reasons.", ("reason", "count"))
        .add(3);
    r.gauge("lf_queue_depth", "Jobs waiting in the queue.").set(4.5);
    let h = r.histogram_with(
        "lf_kernel_model_seconds",
        "Modeled kernel time with a \"quoted\" help.",
        Unit::Nanos,
        ("kernel", "propose\\scan"),
    );
    for v in [100u64, 1_000, 1_000, 50_000, 2_000_000] {
        h.record(v);
    }
    let text = r.snapshot().to_prometheus();

    // --- line-by-line grammar walk ---
    let mut helped: HashMap<String, String> = HashMap::new(); // family -> TYPE
    let mut current: Option<String> = None;
    let mut samples: Vec<Sample> = Vec::new();
    let mut pending_help: Option<String> = None;
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP without text");
            assert!(is_valid_name(name));
            assert!(!help.contains('\n'));
            assert!(pending_help.is_none(), "two HELP lines in a row");
            pending_help = Some(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE without kind");
            assert!(matches!(ty, "counter" | "gauge" | "histogram"), "bad TYPE {ty}");
            assert_eq!(pending_help.take().as_deref(), Some(name), "TYPE not preceded by its HELP");
            assert!(!helped.contains_key(name), "family {name} emitted twice");
            helped.insert(name.to_string(), ty.to_string());
            current = Some(name.to_string());
        } else {
            let s = parse_sample(line);
            let family = current.as_deref().expect("sample before any TYPE");
            let ty = &helped[family];
            let base = s
                .name
                .strip_suffix("_bucket")
                .or_else(|| s.name.strip_suffix("_sum"))
                .or_else(|| s.name.strip_suffix("_count"))
                .filter(|_| ty == "histogram")
                .unwrap_or(&s.name);
            assert_eq!(base, family, "sample {} outside its family block", s.name);
            if ty != "histogram" {
                assert_eq!(base, s.name, "suffixed sample in non-histogram family");
            }
            if s.name.ends_with("_bucket") {
                assert!(s.labels.contains_key("le"), "bucket without le: {line}");
            } else {
                assert!(!s.labels.contains_key("le"), "le outside _bucket: {line}");
            }
            // Quantile estimates are base-name samples of histogram
            // families only, with a known quantile value.
            if let Some(q) = s.labels.get("quantile") {
                assert_eq!(ty, "histogram", "quantile label outside a histogram: {line}");
                assert_eq!(base, s.name.as_str(), "quantile label on a suffixed sample: {line}");
                assert!(matches!(q.as_str(), "0.5" | "0.9" | "0.99"), "unexpected quantile {q}");
            }
            samples.push(s);
        }
    }
    assert!(pending_help.is_none(), "dangling HELP at end");

    // --- semantic spot-checks ---
    assert_eq!(helped["lf_jobs_total"], "counter");
    assert_eq!(helped["lf_kernel_model_seconds"], "histogram");
    let find = |n: &str, key: Option<(&str, &str)>| -> &Sample {
        samples
            .iter()
            .find(|s| {
                s.name == n && key.is_none_or(|(k, v)| s.labels.get(k).map(String::as_str) == Some(v))
            })
            .unwrap_or_else(|| panic!("missing sample {n} {key:?}"))
    };
    assert_eq!(find("lf_jobs_total", None).value, 7.0);
    assert_eq!(find("lf_queue_depth", None).value, 4.5);
    assert_eq!(find("lf_batch_close_total", Some(("reason", "deadline"))).value, 2.0);
    assert_eq!(find("lf_batch_close_total", Some(("reason", "count"))).value, 3.0);
    // Label value with a backslash survives the escape round-trip.
    let c = find("lf_kernel_model_seconds_count", Some(("kernel", "propose\\scan")));
    assert_eq!(c.value, 5.0);
    // Histogram invariants: +Inf bucket equals _count; nanos exposed as seconds.
    let inf = samples
        .iter()
        .find(|s| s.name == "lf_kernel_model_seconds_bucket" && s.labels["le"] == "+Inf")
        .unwrap();
    assert_eq!(inf.value, 5.0);
    let sum = find("lf_kernel_model_seconds_sum", None);
    let raw_ns = 100.0 + 1_000.0 + 1_000.0 + 50_000.0 + 2_000_000.0;
    assert!((sum.value - raw_ns * 1e-9).abs() < 1e-15, "sum {} not in seconds", sum.value);
    // Cumulative bucket counts are non-decreasing with ascending le.
    let buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == "lf_kernel_model_seconds_bucket")
        .map(|s| {
            let le = if s.labels["le"] == "+Inf" {
                f64::INFINITY
            } else {
                s.labels["le"].parse().unwrap()
            };
            (le, s.value)
        })
        .collect();
    let sorted = buckets.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1);
    assert!(sorted, "buckets not ascending/cumulative: {buckets:?}");
    // Quantile estimates exist, are ordered, and stay within [min, max].
    let q = |p: &str| find("lf_kernel_model_seconds", Some(("quantile", p))).value;
    let (p50, p90, p99) = (q("0.5"), q("0.9"), q("0.99"));
    assert!(p50 <= p90 && p90 <= p99, "quantiles out of order: {p50} {p90} {p99}");
    assert!(p50 >= 100.0 * 1e-9 * 0.5, "p50 {p50} below scaled min");
    assert!(p99 <= 2_000_000.0 * 1e-9 * 2.0, "p99 {p99} above scaled max");
}

/// Byte-exact golden rendering of a deterministic registry. The fixture
/// (`tests/fixtures/exposition.prom`) is committed; regenerate it by
/// running this test with `UPDATE_GOLDEN=1` and committing the diff.
#[test]
fn exposition_matches_golden_file() {
    let r = Registry::new();
    r.counter("lf_jobs_total", "Jobs processed by the service.").add(42);
    r.gauge("lf_queue_depth", "Jobs waiting in the queue.").set(3.0);
    let h = r.histogram_with(
        "lf_kernel_model_seconds",
        "Modeled kernel time.",
        Unit::Nanos,
        ("kernel", "spmv"),
    );
    for v in [100u64, 1_000, 1_000, 50_000, 2_000_000] {
        h.record(v);
    }
    let text = r.snapshot().to_prometheus();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/exposition.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &text).unwrap();
    }
    let golden = std::fs::read_to_string(path).expect("committed golden fixture");
    assert_eq!(
        text, golden,
        "exposition drifted from tests/fixtures/exposition.prom \
         (rerun with UPDATE_GOLDEN=1 if intentional)"
    );
}
