//! Property tests for the log-linear histogram: bucket error bounds,
//! merge algebra, and quantile monotonicity.

use lf_metrics::histogram::{
    bucket_bounds, bucket_index, bucket_mid, Histogram, HistogramSnapshot, SUB_BUCKETS,
};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in a bucket that contains it, and the bucket's
    /// midpoint is within the advertised relative-error bound
    /// (`1/SUB_BUCKETS`) of the value.
    #[test]
    fn bucket_contains_value_within_error_bound(v in 0u64..=u64::MAX) {
        let i = bucket_index(v);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {i} = [{lo}, {hi}]");
        let err = (bucket_mid(i) as f64 - v as f64).abs();
        let bound = if v < SUB_BUCKETS { 0.0 } else { v as f64 / SUB_BUCKETS as f64 };
        prop_assert!(err <= bound + 1e-9, "mid error {err} exceeds {bound} for value {v}");
    }

    /// Merging per-shard histograms equals one histogram of all values,
    /// independent of how values are split into shards (order independence).
    #[test]
    fn merge_is_shard_independent(
        values in proptest::collection::vec(0u64..1u64 << 48, 0..300),
        split in 0usize..300,
    ) {
        let split = split.min(values.len());
        let (a, b) = values.split_at(split);
        let whole = snapshot_of(&values);
        prop_assert_eq!(snapshot_of(a).merge(&snapshot_of(b)), whole.clone());
        prop_assert_eq!(snapshot_of(b).merge(&snapshot_of(a)), whole);
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1u64 << 48, 0..100),
        b in proptest::collection::vec(0u64..1u64 << 48, 0..100),
        c in proptest::collection::vec(0u64..1u64 << 48, 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    /// Quantiles are monotone in q and bracketed by min/max midpoints.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u64..1u64 << 48, 1..300),
    ) {
        let s = snapshot_of(&values);
        let qs: Vec<u64> = (0..=20).map(|k| s.quantile(k as f64 / 20.0)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
        }
        prop_assert!(qs[0] >= bucket_mid(bucket_index(s.min)).min(s.min));
        prop_assert!(*qs.last().unwrap() <= bucket_mid(bucket_index(s.max)).max(s.max));
    }

    /// count/sum survive any merge tree exactly (they are exact fields,
    /// not derived from buckets).
    #[test]
    fn merged_totals_are_exact(
        a in proptest::collection::vec(0u64..1u64 << 32, 0..200),
        b in proptest::collection::vec(0u64..1u64 << 32, 0..200),
    ) {
        let m = snapshot_of(&a).merge(&snapshot_of(&b));
        prop_assert_eq!(m.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(m.sum, a.iter().sum::<u64>() + b.iter().sum::<u64>());
        let all_min = a.iter().chain(&b).min().copied().unwrap_or(0);
        let all_max = a.iter().chain(&b).max().copied().unwrap_or(0);
        prop_assert_eq!(m.min, all_min);
        prop_assert_eq!(m.max, all_max);
    }
}
