//! Mergeable log-linear (HDR-style) histograms over `u64` values.
//!
//! The bucket layout has a *linear* region for values below
//! [`SUB_BUCKETS`] (one bucket per value, zero error) and a *log-linear*
//! region above it: every power-of-two octave is split into
//! [`SUB_BUCKETS`] equal sub-buckets, so a bucket's width is at most
//! `1/SUB_BUCKETS` of its lower bound. Any recorded value therefore lies
//! within a relative error of `1/SUB_BUCKETS` (3.125 %) of its bucket
//! bounds — precise enough for latency/traffic quantiles while keeping the
//! whole `u64` range in [`NUM_BUCKETS`] fixed slots, so recording is one
//! index computation plus a handful of relaxed atomic adds and snapshots
//! never stop writers.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of [`SUB_BUCKETS`].
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two octave; also the size of the linear
/// region. The relative error bound of the histogram is `1/SUB_BUCKETS`.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total number of buckets covering all of `u64`: the linear region plus
/// one group of [`SUB_BUCKETS`] for each shift `0..=63-SUB_BITS`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) << SUB_BITS;

/// Bucket index of `v` (see the module docs for the layout).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        (((shift as usize) + 1) << SUB_BITS) | ((v >> shift) as usize & (SUB_BUCKETS as usize - 1))
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < NUM_BUCKETS);
    if i < SUB_BUCKETS as usize {
        (i as u64, i as u64)
    } else {
        let shift = (i >> SUB_BITS) as u32 - 1;
        let sub = (i as u64) & (SUB_BUCKETS - 1);
        let lower = (SUB_BUCKETS + sub) << shift;
        // `((1 << shift) - 1)` first: the top bucket's `lower + 2^shift`
        // would overflow u64 before the `- 1`.
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// Midpoint of bucket `i` — the representative value quantile queries
/// report (exact in the linear region).
pub fn bucket_mid(i: usize) -> u64 {
    let (lo, hi) = bucket_bounds(i);
    lo + (hi - lo) / 2
}

/// An exemplar: the request-scoped trace id of the largest traced
/// observation, so a bad quantile links directly to an offending trace.
/// `trace` is never 0 (0 is the "no exemplar" sentinel in storage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded value (raw units, unscaled).
    pub value: u64,
    /// Correlation id of the request that recorded it.
    pub trace: u64,
}

/// A concurrent log-linear histogram. All operations are relaxed atomics;
/// a snapshot taken while writers are active is a consistent-enough view
/// (each atomic is read once, no locks, no torn buckets — only the
/// cross-field totals may lag by in-flight recordings).
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    // Exemplar pair; ex_trace == 0 means "no exemplar yet". The pair is
    // not updated atomically together — a torn read can pair a value with
    // a neighboring trace, which is acceptable for an exemplar.
    ex_value: AtomicU64,
    ex_trace: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            ex_value: AtomicU64::new(0),
            ex_trace: AtomicU64::new(0),
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a float value (negative and non-finite values clamp to 0,
    /// everything past `u64::MAX` saturates).
    pub fn record_f64(&self, v: f64) {
        if v.is_finite() && v > 0.0 {
            self.record(v.min(u64::MAX as f64) as u64);
        } else {
            self.record(0);
        }
    }

    /// [`Histogram::record`] plus an exemplar update: if `trace` is
    /// nonzero and `v` is at least the current exemplar's value, the
    /// exemplar becomes `(v, trace)`. The histogram thus always names a
    /// trace id responsible for (approximately) its worst observation.
    pub fn record_traced(&self, v: u64, trace: u64) {
        self.record(v);
        if trace == 0 {
            return;
        }
        if self.ex_trace.load(Ordering::Relaxed) == 0
            || v >= self.ex_value.load(Ordering::Relaxed)
        {
            self.ex_value.store(v, Ordering::Relaxed);
            self.ex_trace.store(trace, Ordering::Relaxed);
        }
    }

    /// [`Histogram::record_f64`] with an exemplar (same clamping rules).
    pub fn record_f64_traced(&self, v: f64, trace: u64) {
        if v.is_finite() && v > 0.0 {
            self.record_traced(v.min(u64::MAX as f64) as u64, trace);
        } else {
            self.record_traced(0, trace);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot; writers are not stopped.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
            }
        }
        let ex_trace = self.ex_trace.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            exemplar: (ex_trace != 0).then(|| Exemplar {
                value: self.ex_value.load(Ordering::Relaxed),
                trace: ex_trace,
            }),
            buckets,
        }
    }
}

/// An owned, mergeable snapshot of a [`Histogram`]: the total count/sum
/// plus the non-empty `(bucket index, count)` pairs in index order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (raw units).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Exemplar of the largest traced observation, when any recording
    /// carried a trace id (see [`Histogram::record_traced`]).
    pub exemplar: Option<Exemplar>,
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`): the midpoint of the
    /// bucket holding the value of rank `⌈q·count⌉`. Exact in the linear
    /// region, within the histogram's relative-error bound above it;
    /// monotone in `q`. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return bucket_mid(i as usize);
            }
        }
        bucket_mid(self.buckets.last().map_or(0, |&(i, _)| i as usize))
    }

    /// Merge two snapshots (bucket-wise sum; min/max/count/sum combine).
    /// Associative and commutative: merging histograms of disjoint
    /// recordings in any order or grouping yields the same snapshot.
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        buckets.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        buckets.push((ib, cb));
                        b.next();
                    } else {
                        buckets.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    buckets.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    buckets.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        let count = self.count + other.count;
        Self {
            count,
            sum: self.sum + other.sum,
            min: if count == 0 {
                0
            } else if self.count == 0 {
                other.min
            } else if other.count == 0 {
                self.min
            } else {
                self.min.min(other.min)
            },
            max: self.max.max(other.max),
            // Largest-value exemplar wins (trace id breaks ties), which
            // keeps the merge associative and commutative.
            exemplar: match (self.exemplar, other.exemplar) {
                (Some(a), Some(b)) => Some(if (b.value, b.trace) > (a.value, a.trace) {
                    b
                } else {
                    a
                }),
                (a, b) => a.or(b),
            },
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..SUB_BUCKETS {
            let i = bucket_index(v);
            assert_eq!(bucket_bounds(i), (v, v));
            assert_eq!(bucket_mid(i), v);
        }
    }

    #[test]
    fn bucket_layout_is_contiguous() {
        // Every bucket's upper bound + 1 is the next bucket's lower bound.
        for i in 0..NUM_BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap between buckets {i} and {}", i + 1);
        }
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.quantile(0.0), 1);
        // p50 = rank 50 ⇒ value 50, within the 1/32 relative error bound
        let p50 = s.quantile(0.5) as f64;
        assert!((p50 - 50.0).abs() / 50.0 <= 1.0 / 32.0 + 1e-9, "p50 {p50}");
        let p100 = s.quantile(1.0) as f64;
        assert!((p100 - 100.0).abs() / 100.0 <= 1.0 / 32.0 + 1e-9);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.sum), (0, 0, 0, 0));
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn record_f64_clamps() {
        let h = Histogram::new();
        h.record_f64(-1.0);
        h.record_f64(f64::NAN);
        h.record_f64(2.5);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
    }

    #[test]
    fn exemplar_tracks_the_worst_traced_observation() {
        let h = Histogram::new();
        h.record(1_000_000); // untraced recordings never become exemplars
        assert_eq!(h.snapshot().exemplar, None);
        h.record_traced(10, 0xaaa);
        h.record_traced(500, 0xbbb);
        h.record_traced(20, 0xccc); // smaller: exemplar unchanged
        h.record_traced(7, 0); // trace 0 = untraced
        let s = h.snapshot();
        assert_eq!(s.exemplar, Some(Exemplar { value: 500, trace: 0xbbb }));
        assert_eq!(s.count, 5);
    }

    #[test]
    fn exemplar_merge_is_associative_and_keeps_the_max() {
        let snap = |v: u64, trace: u64| {
            let h = Histogram::new();
            h.record_traced(v, trace);
            h.snapshot()
        };
        let (a, b, c) = (snap(5, 1), snap(9, 2), snap(9, 3));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(
            a.merge(&b).merge(&c).exemplar,
            Some(Exemplar { value: 9, trace: 3 })
        );
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.merge(&a).exemplar, a.exemplar);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        h.record(7);
        h.record(70_000);
        let s = h.snapshot();
        let empty = Histogram::new().snapshot();
        assert_eq!(s.merge(&empty), s);
        assert_eq!(empty.merge(&s), s);
    }
}
