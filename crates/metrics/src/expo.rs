//! Exposition formats: Prometheus text format and JSON.
//!
//! Both render a [`MetricsSnapshot`], so a scrape is: snapshot (no locks
//! held by writers), then format. Histograms recorded in nanoseconds are
//! exposed in seconds ([`crate::registry::Unit::scale`]); bucket bounds become cumulative
//! Prometheus `le` buckets (non-empty buckets only, plus `+Inf`). The JSON
//! document reuses the hand-rolled [`lf_trace::json`] writer helpers and
//! is validated well-formed by the same crate's parser in tests.

use crate::histogram::{bucket_bounds, HistogramSnapshot};
use crate::registry::{FamilySnapshot, MetricsSnapshot, ValueSnapshot};
use lf_trace::json;
use std::fmt::Write;

/// Sanitize a metric or label name to Prometheus `[a-zA-Z_:][a-zA-Z0-9_:]*`
/// (invalid characters become `_`, a leading digit gets a `_` prefix).
pub fn sanitize_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 1);
    for (i, c) in s.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a Prometheus label value (backslash, quote, newline).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a float for the Prometheus text format (which, unlike JSON,
/// spells out non-finite values).
fn prom_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

fn label_part(
    family: &FamilySnapshot,
    label: &Option<String>,
    extra: Option<(&str, &str)>,
) -> String {
    let mut parts = Vec::new();
    if let (Some(k), Some(v)) = (&family.label_key, label) {
        parts.push(format!("{}=\"{}\"", sanitize_name(k), escape_label(v)));
    }
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn prom_histogram(
    out: &mut String,
    family: &FamilySnapshot,
    label: &Option<String>,
    h: &HistogramSnapshot,
    name: &str,
) {
    let scale = family.unit.scale();
    let mut cum = 0u64;
    for &(i, c) in &h.buckets {
        cum += c;
        let le = prom_f64(bucket_bounds(i as usize).1 as f64 * scale);
        let labels = label_part(family, label, Some(("le", &le)));
        let _ = writeln!(out, "{name}_bucket{labels} {cum}");
    }
    let labels = label_part(family, label, Some(("le", "+Inf")));
    // OpenMetrics-style exemplar on the +Inf bucket: the trace id of the
    // worst traced observation, so a bad quantile links to its request.
    let exemplar = match h.exemplar {
        Some(e) => format!(
            " # {{trace_id=\"{:016x}\"}} {}",
            e.trace,
            prom_f64(e.value as f64 * scale)
        ),
        None => String::new(),
    };
    let _ = writeln!(out, "{name}_bucket{labels} {}{exemplar}", h.count);
    let labels = label_part(family, label, None);
    let _ = writeln!(out, "{name}_sum{labels} {}", prom_f64(h.sum as f64 * scale));
    let _ = writeln!(out, "{name}_count{labels} {}", h.count);
    // Summary-style quantile samples estimated from the log-linear
    // buckets, matching the p50/p90/p99 the JSON document reports. They
    // are base-name samples with a `quantile` label (never `le`), so
    // bucket-walking consumers are unaffected.
    for (q, p) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
        let labels = label_part(family, label, Some(("quantile", q)));
        let _ = writeln!(
            out,
            "{name}{labels} {}",
            prom_f64(h.quantile(p) as f64 * scale)
        );
    }
}

impl MetricsSnapshot {
    /// Render as Prometheus text exposition format (version 0.0.4): one
    /// `# HELP` / `# TYPE` pair per family followed by its samples.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let name = sanitize_name(&family.name);
            let _ = writeln!(out, "# HELP {name} {}", family.help.replace('\n', " "));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for s in &family.series {
                match &s.value {
                    ValueSnapshot::Counter(v) => {
                        let labels = label_part(family, &s.label, None);
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    ValueSnapshot::Gauge(v) => {
                        let labels = label_part(family, &s.label, None);
                        let _ = writeln!(out, "{name}{labels} {}", prom_f64(*v));
                    }
                    ValueSnapshot::Histogram(h) => {
                        prom_histogram(&mut out, family, &s.label, h, &name);
                    }
                }
            }
        }
        out
    }

    /// Render as a JSON document:
    ///
    /// ```json
    /// {"families":[{"name":"...","kind":"histogram","unit":"seconds",
    ///   "help":"...","label_key":"kernel","series":[
    ///     {"label":"charge","count":3,"sum":1.2e-5,"min":...,"max":...,
    ///      "mean":...,"p50":...,"p90":...,"p99":...}]}]}
    /// ```
    ///
    /// Counter/gauge series carry `"value"` instead of the distribution
    /// fields; histogram values are scaled to the family's exposed unit.
    pub fn to_json(&self) -> String {
        let families: Vec<String> = self
            .families
            .iter()
            .map(|f| {
                let series: Vec<String> = f
                    .series
                    .iter()
                    .map(|s| {
                        let label = match &s.label {
                            Some(v) => format!("\"label\":\"{}\",", json::escape(v)),
                            None => "\"label\":null,".to_string(),
                        };
                        match &s.value {
                            ValueSnapshot::Counter(v) => format!("{{{label}\"value\":{v}}}"),
                            ValueSnapshot::Gauge(v) => {
                                format!("{{{label}\"value\":{}}}", json::number(*v))
                            }
                            ValueSnapshot::Histogram(h) => {
                                let scale = f.unit.scale();
                                let q = |p: f64| json::number(h.quantile(p) as f64 * scale);
                                let exemplar = match h.exemplar {
                                    Some(e) => format!(
                                        ",\"exemplar\":{{\"value\":{},\"trace_id\":\"{:016x}\"}}",
                                        json::number(e.value as f64 * scale),
                                        e.trace
                                    ),
                                    None => String::new(),
                                };
                                format!(
                                    "{{{label}\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                                     \"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}{exemplar}}}",
                                    h.count,
                                    json::number(h.sum as f64 * scale),
                                    json::number(h.min as f64 * scale),
                                    json::number(h.max as f64 * scale),
                                    json::number(h.mean() * scale),
                                    q(0.5),
                                    q(0.9),
                                    q(0.99),
                                )
                            }
                        }
                    })
                    .collect();
                let label_key = match &f.label_key {
                    Some(k) => format!("\"{}\"", json::escape(k)),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"name\":\"{}\",\"kind\":\"{}\",\"unit\":\"{}\",\"help\":\"{}\",\
                     \"label_key\":{label_key},\"series\":[{}]}}",
                    json::escape(&f.name),
                    f.kind.as_str(),
                    f.unit.as_str(),
                    json::escape(f.help),
                    series.join(",")
                )
            })
            .collect();
        format!("{{\"families\":[{}]}}", families.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, Unit};

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize_name("lf_kernel_model_seconds"), "lf_kernel_model_seconds");
        assert_eq!(sanitize_name("a-b.c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn label_values_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_renders_all_kinds() {
        let r = Registry::new();
        r.counter("jobs_total", "Jobs processed.").add(3);
        r.gauge("queue_depth", "Queue depth.").set(2.0);
        let h = r.histogram_with(
            "model_seconds",
            "Model time.",
            Unit::Nanos,
            ("kernel", "spmv"),
        );
        h.record(1_000); // 1 µs
        h.record(2_000);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 3"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("# TYPE model_seconds histogram"));
        assert!(text.contains("model_seconds_bucket{kernel=\"spmv\",le=\"+Inf\"} 2"));
        assert!(text.contains("model_seconds_count{kernel=\"spmv\"} 2"));
        // sum = 3000 ns = 3e-6 s
        assert!(text.contains("model_seconds_sum{kernel=\"spmv\"} 0.000003"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_ascending() {
        let r = Registry::new();
        let h = r.histogram("lat", "h", Unit::Count);
        for v in [1u64, 1, 5, 100, 10_000] {
            h.record(v);
        }
        let text = r.snapshot().to_prometheus();
        let mut last_cum = 0u64;
        let mut last_le = f64::NEG_INFINITY;
        let mut buckets = 0;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let le: f64 = if line.contains("le=\"+Inf\"") {
                f64::INFINITY
            } else {
                let s = line.split("le=\"").nth(1).unwrap();
                s.split('"').next().unwrap().parse().unwrap()
            };
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(le > last_le, "le not ascending: {line}");
            assert!(cum >= last_cum, "count not cumulative: {line}");
            last_le = le;
            last_cum = cum;
            buckets += 1;
        }
        assert!(buckets >= 5); // 4 distinct value buckets + +Inf
        assert_eq!(last_cum, 5);
    }

    #[test]
    fn exemplars_render_in_both_formats() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "Latency.", Unit::Nanos);
        h.record(500); // untraced
        h.record_traced(2_000, 0xdead_beef_cafe_1234);
        let text = r.snapshot().to_prometheus();
        assert!(
            text.contains("lat_seconds_bucket{le=\"+Inf\"} 2 # {trace_id=\"deadbeefcafe1234\"} "),
            "missing exemplar in:\n{text}"
        );
        let doc = r.snapshot().to_json();
        lf_trace::json::validate(&doc).unwrap();
        assert!(
            doc.contains("\"exemplar\":{\"value\":0.000002")
                && doc.contains("\"trace_id\":\"deadbeefcafe1234\"}"),
            "missing exemplar in:\n{doc}"
        );
        // Untraced histograms render without any exemplar artifacts.
        let r2 = Registry::new();
        r2.histogram("plain", "P.", Unit::Count).record(1);
        assert!(!r2.snapshot().to_prometheus().contains("} # {"));
        assert!(!r2.snapshot().to_json().contains("exemplar"));
    }

    #[test]
    fn json_is_well_formed() {
        let r = Registry::new();
        r.counter_with("jobs_total", "Jobs.", ("outcome", "ok")).inc();
        r.gauge("g", "Gauge with \"quotes\".").set(f64::NAN);
        r.histogram("lat_seconds", "Latency.", Unit::Nanos).record(1_500);
        let doc = r.snapshot().to_json();
        lf_trace::json::validate(&doc).unwrap();
        assert!(doc.contains("\"label\":\"ok\""));
        assert!(doc.contains("\"unit\":\"seconds\""));
        // NaN gauge renders as null, not invalid JSON
        assert!(doc.contains("\"value\":null"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = Registry::new().snapshot();
        assert_eq!(s.to_prometheus(), "");
        assert_eq!(s.to_json(), "{\"families\":[]}");
        lf_trace::json::validate(&s.to_json()).unwrap();
    }
}
