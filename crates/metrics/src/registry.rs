//! The metrics registry: named counter/gauge/histogram families, each
//! optionally fanned out over one label dimension (e.g. per kernel name),
//! snapshotable into [`MetricsSnapshot`] for the exposition formats.
//!
//! Metrics are get-or-create: the first call for a family fixes its kind,
//! help text, unit and label key; later calls with a matching shape return
//! the same instance. A *mismatched* re-registration (same name, different
//! kind or label key) never panics — it returns a detached instance that
//! records into nowhere, so a naming collision degrades to a missing
//! series instead of taking the process down.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1; returns the new value.
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Add `n`; returns the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins float gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge reading 0.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// What a family measures; decides the Prometheus `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Last-value-wins scalar.
    Gauge,
    /// Log-linear distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus type name.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Raw unit histogram values are recorded in; fixes the scale factor the
/// exposition formats apply. Counters and gauges always expose raw values
/// ([`Unit::Count`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless (sizes, iterations); exposed as-is.
    Count,
    /// Bytes; exposed as-is.
    Bytes,
    /// Nanoseconds; exposed as *seconds* (×1e-9), the Prometheus
    /// convention for time.
    Nanos,
}

impl Unit {
    /// Multiplier from raw recorded values to exposed values.
    pub fn scale(self) -> f64 {
        match self {
            Unit::Nanos => 1e-9,
            Unit::Count | Unit::Bytes => 1.0,
        }
    }

    /// Human-readable exposed-unit name (for the JSON exposition).
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Nanos => "seconds",
        }
    }
}

enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: &'static str,
    kind: MetricKind,
    unit: Unit,
    /// Label key shared by all series of the family; `None` = one
    /// unlabeled series (stored under the empty label value).
    label_key: Option<String>,
    series: BTreeMap<String, Series>,
}

/// A metrics registry. [`Registry::new`] is `const`, so a registry can be
/// a `static`; the process-wide instance is [`crate::global`]. Recording
/// through a registry is unconditional — the cheap on/off gate
/// ([`crate::enabled`]) lives at the instrumentation sites.
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("families", &self.lock().len())
            .finish()
    }
}

/// Full shape of a metric family as seen at a get-or-create site; an
/// existing family must match `kind` and the label key or the caller
/// gets a detached instance.
struct Spec<'a> {
    name: &'a str,
    help: &'static str,
    kind: MetricKind,
    unit: Unit,
    label: Option<(&'a str, &'a str)>,
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        // A panic while holding the lock leaves plain data; recover.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get_or_create<T, F: FnOnce() -> Series>(
        &self,
        spec: Spec<'_>,
        make: F,
        extract: impl Fn(&Series) -> Option<Arc<T>>,
        detached: impl FnOnce() -> Arc<T>,
    ) -> Arc<T> {
        let mut map = self.lock();
        let family = map.entry(spec.name.to_string()).or_insert_with(|| Family {
            help: spec.help,
            kind: spec.kind,
            unit: spec.unit,
            label_key: spec.label.map(|(k, _)| k.to_string()),
            series: BTreeMap::new(),
        });
        let shape_ok = family.kind == spec.kind
            && family.label_key.as_deref() == spec.label.map(|(k, _)| k);
        if !shape_ok {
            return detached();
        }
        let value = spec.label.map_or("", |(_, v)| v);
        if let Some(s) = family.series.get(value) {
            return extract(s).unwrap_or_else(detached);
        }
        let s = make();
        let out = extract(&s).unwrap_or_else(detached);
        family.series.insert(value.to_string(), s);
        out
    }

    /// Get or create the unlabeled counter `name`.
    pub fn counter(&self, name: &str, help: &'static str) -> Arc<Counter> {
        self.counter_impl(name, help, None)
    }

    /// Get or create the counter series `name{label.0=label.1}`.
    pub fn counter_with(
        &self,
        name: &str,
        help: &'static str,
        label: (&str, &str),
    ) -> Arc<Counter> {
        self.counter_impl(name, help, Some(label))
    }

    fn counter_impl(
        &self,
        name: &str,
        help: &'static str,
        label: Option<(&str, &str)>,
    ) -> Arc<Counter> {
        self.get_or_create(
            Spec {
                name,
                help,
                kind: MetricKind::Counter,
                unit: Unit::Count,
                label,
            },
            || Series::Counter(Arc::new(Counter::new())),
            |s| match s {
                Series::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Arc::new(Counter::new()),
        )
    }

    /// Get or create the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str, help: &'static str) -> Arc<Gauge> {
        self.gauge_impl(name, help, None)
    }

    /// Get or create the gauge series `name{label.0=label.1}`.
    pub fn gauge_with(&self, name: &str, help: &'static str, label: (&str, &str)) -> Arc<Gauge> {
        self.gauge_impl(name, help, Some(label))
    }

    fn gauge_impl(&self, name: &str, help: &'static str, label: Option<(&str, &str)>) -> Arc<Gauge> {
        self.get_or_create(
            Spec {
                name,
                help,
                kind: MetricKind::Gauge,
                unit: Unit::Count,
                label,
            },
            || Series::Gauge(Arc::new(Gauge::new())),
            |s| match s {
                Series::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Arc::new(Gauge::new()),
        )
    }

    /// Get or create the unlabeled histogram `name` recording raw values
    /// in `unit`.
    pub fn histogram(&self, name: &str, help: &'static str, unit: Unit) -> Arc<Histogram> {
        self.histogram_impl(name, help, unit, None)
    }

    /// Get or create the histogram series `name{label.0=label.1}`.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &'static str,
        unit: Unit,
        label: (&str, &str),
    ) -> Arc<Histogram> {
        self.histogram_impl(name, help, unit, Some(label))
    }

    fn histogram_impl(
        &self,
        name: &str,
        help: &'static str,
        unit: Unit,
        label: Option<(&str, &str)>,
    ) -> Arc<Histogram> {
        self.get_or_create(
            Spec {
                name,
                help,
                kind: MetricKind::Histogram,
                unit,
                label,
            },
            || Series::Histogram(Arc::new(Histogram::new())),
            |s| match s {
                Series::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Arc::new(Histogram::new()),
        )
    }

    /// Drop every registered family. Handles held by callers keep working
    /// but record into detached metrics that no longer appear in
    /// snapshots; instrumentation sites re-fetch by name, so the next
    /// recording re-registers a zeroed family. Bench harnesses call this
    /// between reps so per-rep snapshots are not cumulative.
    pub fn reset(&self) {
        self.lock().clear();
    }

    /// Point-in-time snapshot of every family, ordered by name (and label
    /// value within a family). Writers are not stopped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let families = map
            .iter()
            .map(|(name, f)| FamilySnapshot {
                name: name.clone(),
                help: f.help,
                kind: f.kind,
                unit: f.unit,
                label_key: f.label_key.clone(),
                series: f
                    .series
                    .iter()
                    .map(|(value, s)| SeriesSnapshot {
                        label: f.label_key.as_ref().map(|_| value.clone()),
                        value: match s {
                            Series::Counter(c) => ValueSnapshot::Counter(c.get()),
                            Series::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                            Series::Histogram(h) => ValueSnapshot::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect();
        MetricsSnapshot { families }
    }
}

/// A point-in-time copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All families, ordered by name.
    pub families: Vec<FamilySnapshot>,
}

/// One metric family and all its label series.
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    /// Family name (sanitized for Prometheus at exposition time).
    pub name: String,
    /// Help text from the first registration.
    pub help: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Raw recording unit (fixes the exposition scale).
    pub unit: Unit,
    /// The label key shared by the series, if the family is labeled.
    pub label_key: Option<String>,
    /// Series ordered by label value (a single unlabeled one otherwise).
    pub series: Vec<SeriesSnapshot>,
}

/// One series (one label value) of a family.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSnapshot {
    /// Label value (`None` on unlabeled families).
    pub label: Option<String>,
    /// The captured value.
    pub value: ValueSnapshot,
}

/// Captured value of one series.
#[derive(Clone, Debug, PartialEq)]
pub enum ValueSnapshot {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instance() {
        let r = Registry::new();
        let a = r.counter("c_total", "help");
        let b = r.counter("c_total", "help");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        r.counter_with("k_total", "h", ("kernel", "a")).inc();
        r.counter_with("k_total", "h", ("kernel", "b")).add(5);
        let s = r.snapshot();
        assert_eq!(s.families.len(), 1);
        let f = &s.families[0];
        assert_eq!(f.label_key.as_deref(), Some("kernel"));
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].label.as_deref(), Some("a"));
        assert_eq!(f.series[0].value, ValueSnapshot::Counter(1));
        assert_eq!(f.series[1].value, ValueSnapshot::Counter(5));
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_panicking() {
        let r = Registry::new();
        r.counter("m", "h").inc();
        // Same name, different kind: records into a detached gauge.
        r.gauge("m", "h").set(9.0);
        let s = r.snapshot();
        assert_eq!(s.families.len(), 1);
        assert_eq!(s.families[0].kind, MetricKind::Counter);
        assert_eq!(s.families[0].series[0].value, ValueSnapshot::Counter(1));
        // Different label key on an existing family: also detached.
        r.counter_with("m2", "h", ("a", "x")).inc();
        let d = r.counter_with("m2", "h", ("b", "x"));
        d.inc();
        let s = r.snapshot();
        let f = s.families.iter().find(|f| f.name == "m2").unwrap();
        assert_eq!(f.series.len(), 1);
        assert_eq!(f.series[0].value, ValueSnapshot::Counter(1));
    }

    #[test]
    fn gauge_holds_last_value() {
        let r = Registry::new();
        let g = r.gauge("g", "h");
        g.set(1.5);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn reset_clears_families() {
        let r = Registry::new();
        let c = r.counter("c_total", "h");
        c.inc();
        r.histogram("h", "h", Unit::Nanos).record(10);
        assert_eq!(r.snapshot().families.len(), 2);
        r.reset();
        assert!(r.snapshot().families.is_empty());
        // The held handle still works but is detached...
        c.inc();
        assert!(r.snapshot().families.is_empty());
        // ...and re-fetching by name registers a fresh zeroed counter.
        assert_eq!(r.counter("c_total", "h").get(), 0);
    }

    #[test]
    fn snapshot_orders_families_and_series() {
        let r = Registry::new();
        r.counter("z_total", "h").inc();
        r.counter("a_total", "h").inc();
        r.histogram_with("lat", "h", Unit::Nanos, ("k", "b")).record(1);
        r.histogram_with("lat", "h", Unit::Nanos, ("k", "a")).record(2);
        let s = r.snapshot();
        let names: Vec<&str> = s.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a_total", "lat", "z_total"]);
        let labels: Vec<&str> = s.families[1]
            .series
            .iter()
            .map(|x| x.label.as_deref().unwrap())
            .collect();
        assert_eq!(labels, vec!["a", "b"]);
    }
}
