//! # lf-metrics — process-wide metrics for the linear-forest pipeline
//!
//! A low-overhead metrics registry: named [`Counter`]s, [`Gauge`]s and
//! mergeable log-linear [`Histogram`]s with quantile queries, snapshotable
//! without stopping writers, rendered as Prometheus text exposition or
//! JSON. The process-wide instance lives behind [`global()`]; recording is
//! gated by [`enabled()`] — a single relaxed atomic load, mirroring the
//! lf-trace `Tracer::is_active` design — so instrumentation left in hot
//! loops costs one branch when metrics are off.
//!
//! Instrumentation sites follow one pattern: check the gate, fetch handles
//! by name (hoisted out of loops where it matters), record:
//!
//! ```
//! use lf_metrics::{enabled, global, Unit};
//!
//! lf_metrics::enable();
//! if enabled() {
//!     let lat = global().histogram_with(
//!         "lf_kernel_model_seconds",
//!         "Modeled kernel execution time.",
//!         Unit::Nanos,
//!         ("kernel", "spmv"),
//!     );
//!     lat.record(1_250); // nanoseconds; exposed as seconds
//! }
//! let text = global().snapshot().to_prometheus();
//! assert!(text.contains("lf_kernel_model_seconds_count{kernel=\"spmv\"}"));
//! # lf_metrics::disable();
//! # lf_metrics::global().reset();
//! ```
//!
//! Families are get-or-create and never panic on shape collisions (a
//! mismatched re-registration returns a detached instance); see
//! [`registry`] for the policy and [`histogram`] for the bucket layout and
//! error bounds.

#![warn(missing_docs)]

pub mod expo;
pub mod histogram;
pub mod registry;

pub use histogram::{Exemplar, Histogram, HistogramSnapshot};
pub use registry::{
    Counter, FamilySnapshot, Gauge, MetricKind, MetricsSnapshot, Registry, SeriesSnapshot, Unit,
    ValueSnapshot,
};

use std::sync::atomic::{AtomicBool, Ordering};

static GLOBAL: Registry = Registry::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry. Always usable; whether the instrumentation
/// layers feed it is governed by [`enable`]/[`disable`].
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Whether instrumentation sites should record. One relaxed atomic load —
/// this is the entire overhead of the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn instrumentation on (e.g. when a `--metrics` flag is present).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn instrumentation off. Already-collected data stays in the registry
/// until [`Registry::reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles() {
        // Don't assume the initial state: the doctest and other tests in
        // this binary share the process-wide flag.
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn global_is_shared() {
        let name = "lf_metrics_selftest_total";
        global().counter(name, "Self test.").add(2);
        assert!(global().counter(name, "Self test.").get() >= 2);
    }
}
