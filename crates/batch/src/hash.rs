//! Content hashing of CSR graphs.
//!
//! One FNV-1a hash serves two purposes: it keys the prepared-graph LRU
//! cache ([`crate::cache`]), and it derives each job's charge salt. Salting
//! by *content* rather than by submission order is what makes results
//! reproducible: a graph factors identically whether it arrives first or
//! tenth, alone or in a batch, today or tomorrow.

use lf_sparse::{Csr, Scalar};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn mix(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a hash of a CSR matrix's full content: shape, sparsity structure,
/// and the exact bit patterns of the values (so `0.0` and `-0.0` hash
/// differently, matching the bit-exactness contract of the pipeline).
pub fn content_hash<T: Scalar>(a: &Csr<T>) -> u64 {
    let mut h = FNV_OFFSET;
    mix(&mut h, &(a.nrows() as u64).to_le_bytes());
    mix(&mut h, &(a.ncols() as u64).to_le_bytes());
    for &r in a.row_ptr() {
        mix(&mut h, &(r as u64).to_le_bytes());
    }
    for &c in a.col_idx() {
        mix(&mut h, &c.to_le_bytes());
    }
    for v in a.vals() {
        mix(&mut h, &v.to_f64().to_bits().to_le_bytes());
    }
    h
}

/// Fold a content hash into a per-graph charge salt. Forced nonzero:
/// salt `0` means "unsalted" ([`lf_core::charge::salted_key`]), which
/// would silently correlate a graph's charge stream with every other
/// unsalted graph in its batch.
pub fn salt_from_hash(hash: u64) -> u32 {
    let folded = (hash ^ (hash >> 32)) as u32;
    if folded == 0 {
        1
    } else {
        folded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_sparse::Coo;

    fn graph(w: f64) -> Csr<f64> {
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 1, w);
        coo.push_sym(1, 2, 2.0 * w);
        Csr::from_coo(coo)
    }

    #[test]
    fn equal_content_equal_hash() {
        assert_eq!(content_hash(&graph(1.5)), content_hash(&graph(1.5)));
    }

    #[test]
    fn values_structure_and_shape_matter() {
        let base = content_hash(&graph(1.5));
        assert_ne!(base, content_hash(&graph(1.25)), "value change");
        let mut coo = Coo::new(3, 3);
        coo.push_sym(0, 2, 1.5);
        coo.push_sym(1, 2, 3.0);
        assert_ne!(
            base,
            content_hash(&Csr::from_coo(coo)),
            "structure change"
        );
        assert_ne!(
            content_hash(&Csr::<f64>::zeros(2, 2)),
            content_hash(&Csr::<f64>::zeros(3, 3)),
            "shape change"
        );
    }

    #[test]
    fn signed_zero_distinguished() {
        let mut a = Coo::new(2, 2);
        a.push(0, 1, 0.0);
        let mut b = Coo::new(2, 2);
        b.push(0, 1, -0.0);
        assert_ne!(
            content_hash(&Csr::from_coo(a)),
            content_hash(&Csr::from_coo(b))
        );
    }

    #[test]
    fn salt_never_zero() {
        assert_eq!(salt_from_hash(0), 1);
        assert_eq!(salt_from_hash(0xffff_ffff_0000_0000 ^ 0x0000_0000_ffff_ffff), 1);
        assert_ne!(salt_from_hash(content_hash(&graph(1.0))), 0);
    }
}
