//! LRU cache of prepared graphs, keyed by content hash.
//!
//! Preparation (`A' = |A| − diag(|A|)`, symmetrized) is `O(nnz)` host work
//! per submission; services that re-extract the same graphs — parameter
//! sweeps, periodic re-optimization — pay it once. Entries are shared as
//! `Arc`s so a cached graph can sit in several in-flight batches at once.

use lf_sparse::Csr;
use std::sync::Arc;

/// A small LRU map `content hash → prepared graph`.
pub struct CsrCache {
    capacity: usize,
    /// Most-recently-used last; tiny capacities make a Vec the right
    /// structure (no hashing, no pointer chasing).
    entries: Vec<(u64, Arc<Csr<f64>>)>,
    hits: u64,
    misses: u64,
}

impl CsrCache {
    /// An empty cache holding at most `capacity` graphs.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up a prepared graph, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<Arc<Csr<f64>>> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                let e = self.entries.remove(i);
                let v = e.1.clone();
                self.entries.push(e);
                self.hits += 1;
                crate::stats::cache_hit();
                Some(v)
            }
            None => {
                self.misses += 1;
                crate::stats::cache_miss();
                None
            }
        }
    }

    /// Insert a prepared graph, evicting the least-recently-used entry if
    /// the cache is full. Inserting an existing key refreshes its value
    /// and recency.
    pub fn insert(&mut self, key: u64, value: Arc<Csr<f64>>) {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        } else if self.entries.len() >= self.capacity {
            if self.capacity == 0 {
                return;
            }
            self.entries.remove(0);
        }
        self.entries.push((key, value));
    }

    /// Number of cached graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served by this cache instance (the process-wide counter in
    /// [`crate::stats`] aggregates across instances; worker shards report
    /// these per-instance numbers so per-shard effectiveness is visible).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups this cache instance missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: usize) -> Arc<Csr<f64>> {
        Arc::new(Csr::zeros(n, n))
    }

    #[test]
    fn lru_eviction_order() {
        let _g = crate::stats::test_guard();
        let mut c = CsrCache::new(2);
        c.insert(1, g(1));
        c.insert(2, g(2));
        assert!(c.get(1).is_some()); // 1 is now most recent
        c.insert(3, g(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes() {
        let _g = crate::stats::test_guard();
        let mut c = CsrCache::new(2);
        c.insert(1, g(1));
        c.insert(2, g(2));
        c.insert(1, g(8)); // refresh, not duplicate
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().nrows(), 8);
        c.insert(3, g(3)); // evicts 2 (least recent), not 1
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let _g = crate::stats::test_guard();
        let mut c = CsrCache::new(0);
        c.insert(1, g(1));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }
}
