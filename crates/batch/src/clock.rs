//! Time sources for the scheduler.
//!
//! The deadline rule in [`crate::ExtractionService`] needs a notion of
//! "now", but the service itself must stay a deterministic state machine:
//! `repro gate` and the lf-batch tests drive it with explicit instants and
//! expect bit-stable output. The [`Clock`] trait separates the two uses:
//!
//! * [`MonotonicClock`] reads [`Instant::now`] — the real-time source for
//!   the long-running serve path, where deadline-aware batch closing has
//!   to fire without anyone handing the scheduler a timestamp.
//! * [`ModelClock`] is a manually advanced counter over a fixed base
//!   instant — deterministic mode. Two runs that advance it identically
//!   observe identical times, so batch formation (and therefore fusion
//!   order, salts, and every downstream bit) replays exactly.
//!
//! The synchronous entry points ([`crate::ExtractionService::submit`],
//! [`crate::ExtractionService::poll`]) still take an explicit `Instant`
//! and never consult the clock, so existing deterministic callers are
//! byte-for-byte unaffected; the clocked convenience methods
//! (`submit_now`/`poll_now`) are the only readers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source the scheduler can poll.
pub trait Clock: Send + Sync {
    /// The current instant. Must be monotonic per clock instance.
    fn now(&self) -> Instant;
}

/// Real time: every call reads [`Instant::now`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// Deterministic model time: a nanosecond offset over a base instant,
/// advanced explicitly. Reads never observe real time passing.
#[derive(Debug)]
pub struct ModelClock {
    base: Instant,
    offset_ns: AtomicU64,
}

impl Default for ModelClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelClock {
    /// A model clock at offset zero. The base instant is captured once at
    /// construction; only the offset ever changes.
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
            offset_ns: AtomicU64::new(0),
        }
    }

    /// Advance model time by `d`.
    pub fn advance(&self, d: Duration) {
        self.advance_ns(d.as_nanos() as u64);
    }

    /// Advance model time by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.offset_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Nanoseconds of model time elapsed since construction.
    pub fn elapsed_ns(&self) -> u64 {
        self.offset_ns.load(Ordering::Relaxed)
    }

    /// A shared handle, for handing one clock to a service and a driver.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }
}

impl Clock for ModelClock {
    fn now(&self) -> Instant {
        self.base + Duration::from_nanos(self.offset_ns.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_clock_advances_only_on_demand() {
        let c = ModelClock::new();
        let a = c.now();
        let b = c.now();
        assert_eq!(a, b, "model time must not move between reads");
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now() - a, Duration::from_millis(5));
        c.advance_ns(1_000);
        assert_eq!(c.elapsed_ns(), 5_000_000 + 1_000);
    }

    #[test]
    fn model_clock_is_shareable_across_threads() {
        let c = ModelClock::shared();
        let t = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || c.advance(Duration::from_secs(1)))
        };
        t.join().unwrap();
        assert_eq!(c.elapsed_ns(), 1_000_000_000);
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock;
        let a = c.now();
        assert!(c.now() >= a);
    }
}
