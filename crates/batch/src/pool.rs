//! Workspace pooling across batches.
//!
//! PR 1 made the factor pipeline's scratch buffers reusable within a loop
//! ([`lf_core::FactorWorkspace`], built on the device `Reusable` buffers);
//! the pool extends that across the service's lifetime: workspaces are
//! checked out for a batch, checked back in afterwards, and keep their
//! grown capacity, so steady-state batches allocate nothing.

use lf_core::FactorWorkspace;

/// Everything one batch run needs in scratch space: the factor workspace
/// (confirmed/proposal slots, frontier, …) and the fused charge-key buffer.
#[derive(Default)]
pub struct BatchWorkspace {
    /// Factor-stage scratch, reused by [`lf_core::extract_linear_forest_with`].
    pub factor: FactorWorkspace<f64, 2>,
    /// Fused per-vertex charge keys, rebuilt (but not reallocated) per batch.
    pub keys: Vec<u32>,
}

/// A bounded free-list of [`BatchWorkspace`]s. `acquire` pops a pooled
/// workspace (hit) or creates a fresh one (miss); `release` returns it,
/// dropping the workspace instead when the pool is full.
pub struct WorkspacePool {
    capacity: usize,
    free: Vec<BatchWorkspace>,
    hits: u64,
    misses: u64,
}

impl WorkspacePool {
    /// An empty pool retaining at most `capacity` idle workspaces.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Check a workspace out, preferring a pooled one.
    pub fn acquire(&mut self) -> BatchWorkspace {
        match self.free.pop() {
            Some(ws) => {
                self.hits += 1;
                crate::stats::pool_hit();
                ws
            }
            None => {
                self.misses += 1;
                crate::stats::pool_miss();
                BatchWorkspace::default()
            }
        }
    }

    /// Check a workspace back in; dropped if the pool is at capacity.
    pub fn release(&mut self, ws: BatchWorkspace) {
        if self.free.len() < self.capacity {
            self.free.push(ws);
        }
    }

    /// Number of idle workspaces currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Checkouts this pool instance served from its free list.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Checkouts this pool instance satisfied by allocating fresh.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let _g = crate::stats::test_guard();
        let mut pool = WorkspacePool::new(2);
        assert_eq!(pool.idle(), 0);
        let a = pool.acquire();
        let b = pool.acquire();
        let c = pool.acquire();
        pool.release(a);
        pool.release(b);
        pool.release(c); // beyond capacity: dropped
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.capacity(), 2);
        let _ = pool.acquire();
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pooled_workspace_keeps_buffers() {
        let _g = crate::stats::test_guard();
        let mut pool = WorkspacePool::new(1);
        let mut ws = pool.acquire();
        ws.keys.resize(1000, 7);
        pool.release(ws);
        let ws = pool.acquire();
        assert!(ws.keys.capacity() >= 1000, "grown capacity retained");
    }
}
