//! Block-diagonal fusion and scatter-back.
//!
//! # Determinism argument
//!
//! Fusing K graphs as a disjoint union and extracting once is **bit-
//! identical** to K solo extractions (each solo run salted with its
//! graph's salt) because every stage of the pipeline decomposes over
//! connected components and every tie-break is invariant under the
//! constant vertex offset a block receives:
//!
//! * **Charges** — the fused run charges global vertex `off_i + v` with
//!   the key `salted_key(v, salt_i)`, exactly the key the solo run of
//!   graph `i` derives from `FactorConfig::with_charge_salt(salt_i)`.
//!   Identical keys, identical MD5 stream, identical charges.
//! * **Proposition/confirmation** — the disjoint union has no cross-block
//!   edges, so a vertex only ever sees proposals from its own block. The
//!   Top-K accumulator breaks weight ties toward the *smaller column*;
//!   adding the same offset to every candidate column preserves that
//!   order. Once a block is maximal its confirmed slots are frozen (no
//!   addable edge exists), so extra fused iterations driven by slower
//!   blocks cannot perturb it.
//! * **Cycle breaking** — each cycle lies inside one block, and the
//!   weakest-edge choice minimizes lexicographically on `(w, u, v)`,
//!   again offset-invariant.
//! * **Path identification** — a path's ID is its smaller end vertex, so
//!   fused IDs are solo IDs plus the block offset; positions are offsets
//!   into the path and unchanged.
//! * **Permutation** — the radix sort orders by `(path_id, position)`.
//!   Block `i`'s keys all lie in `[off_i, off_{i+1})`, so the fused
//!   permutation is the blocks' solo permutations concatenated in block
//!   order with the offset added.
//!
//! The one quantity that is *not* preserved is `factor_iterations`: the
//! fused run detects maximality globally (all blocks at once), a solo run
//! per graph. [`scatter_forests`] therefore reports the fused iteration
//! count for every graph, and equivalence tests compare everything else.

use crate::hash::{content_hash, salt_from_hash};
use lf_core::charge::salted_key;
use lf_core::cycles::CycleReport;
use lf_core::paths::PathInfo;
use lf_core::{Factor, LinearForest, INVALID};
use lf_sparse::{Csr, Scalar, UnionError};

/// A block-diagonal disjoint union of prepared graphs, plus the index
/// needed to run it as one extraction and scatter the results back.
#[derive(Clone, Debug)]
pub struct FusedBatch<T> {
    /// The fused prepared graph (`A'` of the disjoint union).
    pub graph: Csr<T>,
    /// Vertex offsets per block, length `K + 1`: block `i` owns global
    /// vertices `offsets[i]..offsets[i+1]`.
    pub offsets: Vec<u32>,
    /// Per-block charge salts (content-derived, never zero).
    pub salts: Vec<u32>,
    /// Per-vertex charge keys of the fused graph:
    /// `keys[offsets[i] + v] = salted_key(v, salts[i])`.
    pub charge_keys: Vec<u32>,
}

impl<T: Scalar> FusedBatch<T> {
    /// Fuse prepared graphs into one block-diagonal extraction input.
    /// `salts[i]` is block `i`'s charge salt — derive it with
    /// [`FusedBatch::content_salts`] for reproducible batching-invariant
    /// results, or pass custom salts for experiments.
    ///
    /// # Errors
    ///
    /// [`UnionError`] when the fused index arithmetic would overflow; no
    /// partial fusion is returned.
    ///
    /// # Panics
    ///
    /// When `salts.len() != parts.len()` or a part is not square — both
    /// programming errors of the caller, not data-dependent conditions
    /// (the scheduler validates jobs before fusing).
    pub fn fuse(parts: &[&Csr<T>], salts: &[u32]) -> Result<Self, UnionError> {
        Self::fuse_reusing(parts, salts, Vec::new())
    }

    /// [`FusedBatch::fuse`] reusing a caller-owned charge-key buffer (the
    /// workspace pool hands the previous batch's buffer back in, so the
    /// steady state allocates nothing). The buffer is cleared first; take
    /// it back from [`FusedBatch::charge_keys`] after the run.
    pub fn fuse_reusing(
        parts: &[&Csr<T>],
        salts: &[u32],
        mut charge_keys: Vec<u32>,
    ) -> Result<Self, UnionError> {
        assert_eq!(salts.len(), parts.len(), "one salt per part");
        let graph = Csr::disjoint_union(parts)?;
        let mut offsets = Vec::with_capacity(parts.len() + 1);
        charge_keys.clear();
        charge_keys.reserve(graph.nrows());
        let mut off = 0u32;
        offsets.push(0);
        for (p, &salt) in parts.iter().zip(salts) {
            assert_eq!(p.nrows(), p.ncols(), "parts must be square");
            // disjoint_union checked the fused column count fits u32, and
            // for square parts rows == columns.
            off += p.nrows() as u32;
            offsets.push(off);
            charge_keys.extend((0..p.nrows() as u32).map(|v| salted_key(v, salt)));
        }
        Ok(Self {
            graph,
            offsets,
            salts: salts.to_vec(),
            charge_keys,
        })
    }

    /// Content-derived charge salts for a set of graphs: hash each graph
    /// ([`content_hash`]) and fold ([`salt_from_hash`]). Equal graphs get
    /// equal salts, so results are independent of batch composition and
    /// submission order.
    pub fn content_salts(parts: &[&Csr<T>]) -> Vec<u32> {
        parts
            .iter()
            .map(|p| salt_from_hash(content_hash(*p)))
            .collect()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.salts.len()
    }

    /// Global vertex range of block `i`.
    pub fn block_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }
}

/// Scatter a fused extraction result back into one [`LinearForest`] per
/// block, undoing the vertex offsets. The factor slots, path IDs and
/// positions, permutation, and removed cycle edges are all exact — equal
/// to the blocks' solo results — while `factor_iterations` carries the
/// fused iteration count (see the module docs for why it cannot match).
pub fn scatter_forests<T: Scalar>(
    fused: &LinearForest<T>,
    offsets: &[u32],
) -> Vec<LinearForest<T>> {
    let blocks = offsets.len().saturating_sub(1);
    let n = fused.factor.degree_bound();
    let cols = fused.factor.slot_cols();
    let ws = fused.factor.slot_weights();

    // The fused permutation is block-contiguous (see module docs), but
    // scattering by *value* rather than by slicing keeps this correct even
    // for exotic inputs: each entry is routed to the block owning it,
    // preserving fused order within the block.
    let mut perms: Vec<Vec<u32>> = (0..blocks)
        .map(|i| Vec::with_capacity((offsets[i + 1] - offsets[i]) as usize))
        .collect();
    for &old in &fused.perm {
        let b = offsets.partition_point(|&o| o <= old) - 1;
        perms[b].push(old - offsets[b]);
    }
    let mut perms = perms.into_iter();

    // Removed cycle edges, partitioned by the block owning their endpoints
    // (cycles never cross blocks).
    let mut removed: Vec<Vec<(u32, u32)>> = vec![Vec::new(); blocks];
    for &(u, v) in &fused.cycles.removed {
        let b = offsets.partition_point(|&o| o <= u) - 1;
        removed[b].push((u - offsets[b], v - offsets[b]));
    }
    let mut removed = removed.into_iter();

    (0..blocks)
        .map(|i| {
            let lo = offsets[i] as usize;
            let hi = offsets[i + 1] as usize;
            let off = offsets[i];
            let bcols: Vec<u32> = cols[lo * n..hi * n]
                .iter()
                .map(|&c| if c == INVALID { INVALID } else { c - off })
                .collect();
            let bws = ws[lo * n..hi * n].to_vec();
            let removed = removed.next().unwrap();
            (
                Factor::from_slots(hi - lo, n, bcols, bws),
                PathInfo {
                    path_id: fused.paths.path_id[lo..hi].iter().map(|&p| p - off).collect(),
                    position: fused.paths.position[lo..hi].to_vec(),
                },
                CycleReport {
                    cycles: removed.len(),
                    removed,
                },
            )
        })
        .map(|(factor, paths, cycles)| LinearForest {
            factor,
            paths,
            perm: perms.next().unwrap(),
            cycles,
            factor_iterations: fused.factor_iterations,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_core::{extract_linear_forest, extract_linear_forest_with, FactorConfig, FactorWorkspace};
    use lf_kernel::Device;
    use lf_sparse::random::random_symmetric;

    fn graphs() -> Vec<Csr<f64>> {
        vec![
            random_symmetric(60, 3.0, 0.1, 1.0, 1),
            random_symmetric(45, 4.0, 0.1, 1.0, 2),
            random_symmetric(70, 2.5, 0.1, 1.0, 3),
        ]
    }

    #[test]
    fn fuse_builds_offsets_and_keys() {
        let gs = graphs();
        let parts: Vec<&Csr<f64>> = gs.iter().collect();
        let salts = FusedBatch::content_salts(&parts);
        assert!(salts.iter().all(|&s| s != 0));
        let fused = FusedBatch::fuse(&parts, &salts).unwrap();
        assert_eq!(fused.offsets, vec![0, 60, 105, 175]);
        assert_eq!(fused.graph.nrows(), 175);
        assert_eq!(fused.charge_keys.len(), 175);
        assert_eq!(fused.charge_keys[60], salted_key(0, salts[1]));
        assert_eq!(fused.num_blocks(), 3);
        assert_eq!(fused.block_range(2), 105..175);
    }

    #[test]
    fn fused_extraction_matches_solo() {
        let dev = Device::default();
        let cfg = FactorConfig::paper_default(2);
        let gs = graphs();
        let parts: Vec<&Csr<f64>> = gs.iter().collect();
        let salts = FusedBatch::content_salts(&parts);
        let fused = FusedBatch::fuse(&parts, &salts).unwrap();
        let (forest, _) = extract_linear_forest_with(
            &dev,
            &fused.graph,
            &cfg,
            Some(&fused.charge_keys),
            &mut FactorWorkspace::new(),
        )
        .unwrap();
        let scattered = scatter_forests(&forest, &fused.offsets);
        assert_eq!(scattered.len(), 3);
        for ((g, part), salt) in scattered.iter().zip(&gs).zip(&salts) {
            let solo_cfg = cfg.with_charge_salt(*salt);
            let (solo, _) = extract_linear_forest(&dev, part, &solo_cfg).unwrap();
            assert_eq!(g.factor, solo.factor);
            assert_eq!(g.paths, solo.paths);
            assert_eq!(g.perm, solo.perm);
            assert_eq!(g.cycles.removed, solo.cycles.removed);
        }
    }
}
