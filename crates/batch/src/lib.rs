//! # lf-batch — a multi-tenant extraction service
//!
//! The pipeline of the paper is per-vertex/per-edge parallel, so a small
//! graph leaves most of the device idle: launch overhead and `O(log n)`
//! scan depth dominate once `n` falls below the device's parallel width.
//! This crate batches many small extractions into one device-sized run:
//!
//! 1. **Block-diagonal fusion** ([`fuse`]): pack N independent graphs into
//!    one disjoint-union CSR ([`lf_sparse::Csr::disjoint_union`]), run the
//!    factor/forest pipeline *once* over the fused graph, and scatter the
//!    per-graph [`lf_core::LinearForest`] results back out. Charges are
//!    salted per graph, which makes the fused run bit-identical to N solo
//!    runs — see [`fuse`] for the argument.
//! 2. **Job scheduling** ([`scheduler`]): a bounded submission queue and a
//!    size-aware batch former that closes a batch on an nnz budget, a job
//!    count, or a deadline. Every job gets its own [`JobOutcome`] with
//!    typed errors, so one poisoned graph fails alone, not its batch.
//! 3. **Pooling** ([`pool`], [`cache`]): factor workspaces are checked in
//!    and out across batches (extending the `Reusable` machinery), and
//!    prepared graphs are kept in an LRU cache keyed by content hash for
//!    repeated submissions.
//!
//! Service-wide counters live in [`stats`] and surface through
//! `lf stats --json` / `lf batch --json`.

#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod fuse;
pub mod hash;
pub mod pool;
pub mod scheduler;
pub mod stats;
pub mod timeline;

pub use cache::CsrCache;
pub use clock::{Clock, ModelClock, MonotonicClock};
pub use fuse::{scatter_forests, FusedBatch};
pub use hash::{content_hash, salt_from_hash};
pub use pool::{BatchWorkspace, WorkspacePool};
pub use scheduler::{
    BatchConfig, ExtractionService, JobError, JobOutcome, JobResult, SaltPolicy, SubmitError,
};
pub use stats::{counters, reset_stats, ServiceCounters};
pub use timeline::{attribute_stages, split_model_ns, JobTimeline, StageSlice};
