//! The extraction service: bounded submission queue, size-aware batch
//! formation, fused execution with per-job fault isolation.
//!
//! The scheduler is a deterministic synchronous state machine — no
//! threads, no clocks of its own. Callers submit jobs, then drive it with
//! [`ExtractionService::poll`] (passing the current time, so tests control
//! the deadline) or flush it with [`ExtractionService::drain`]. A batch
//! closes when its nnz budget fills, its job count caps, or the oldest
//! queued job exceeds the deadline.
//!
//! Fault isolation is per job: validation errors (non-square, non-finite)
//! are attached to the offending job at submit time and never enter a
//! fused graph; a part that would overflow the fused index space fails
//! alone with its [`UnionError`]; and if the fused extraction itself
//! reports an error, the batch re-runs each member solo so only the
//! culpable graph carries the error.

use crate::cache::CsrCache;
use crate::clock::{Clock, MonotonicClock};
use crate::fuse::{scatter_forests, FusedBatch};
use crate::hash::{content_hash, salt_from_hash};
use crate::pool::WorkspacePool;
use crate::stats;
use crate::timeline::{attribute_stages, JobTimeline, StageSlice};
use lf_check::audit::{audit_factor, audit_input, audit_paths, audit_permutation};
use lf_check::Violation;
use lf_core::{
    extract_linear_forest_with, prepare_undirected, FactorConfig, LinearForest, PipelineError,
    QualityReport,
};
use lf_kernel::Device;
use lf_sparse::{Csr, UnionError};
use lf_trace::TraceContext;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the service assigns per-job charge salts (see [`crate::fuse`] for
/// why salts exist at all).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SaltPolicy {
    /// Content-derived salt per graph ([`salt_from_hash`]): fused results
    /// are bit-identical to solo runs *under the same salt*, and distinct
    /// graphs get decorrelated tie-breaks. The service default.
    #[default]
    Content,
    /// Salt 0 for every job. `salted_key(v, 0) == v`, so results are
    /// bit-identical to a plain unsalted solo extraction (`lf forest`) —
    /// the mode the HTTP serve path uses so a POSTed graph returns exactly
    /// what the one-shot CLI would print. The fusion determinism argument
    /// is salt-agnostic (blocks of the disjoint union never interact), so
    /// batching remains exact.
    Solo,
}

/// Service configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Maximum number of queued jobs; submissions beyond it are rejected
    /// with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// A batch closes once it holds this many jobs.
    pub max_batch_jobs: usize,
    /// A batch closes once its fused prepared-graph nnz reaches this
    /// budget (a single oversized job still forms its own batch).
    pub nnz_budget: usize,
    /// A batch closes when the oldest queued job has waited this long,
    /// even if the budget is not met.
    pub deadline: Duration,
    /// Factor configuration for every extraction; `n` must be 2. The
    /// per-graph charge salt is managed by the service (see
    /// [`BatchConfig::salt_policy`]), so `charge_salt` here is ignored.
    pub factor: FactorConfig,
    /// How per-job charge salts are assigned.
    pub salt_policy: SaltPolicy,
    /// Audit every scattered result with lf-check stage audits; failures
    /// become [`JobError::Audit`] on the affected job.
    pub check: bool,
    /// Idle workspaces retained by the pool.
    pub pool_capacity: usize,
    /// Prepared graphs retained by the LRU cache.
    pub cache_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch_jobs: 32,
            nnz_budget: 1 << 20,
            deadline: Duration::from_millis(10),
            // Frontier mode matters for fused runs: blocks that finish
            // early drop out of the proposition traffic instead of being
            // re-scanned until the slowest block converges.
            factor: FactorConfig::paper_default(2).with_frontier(true),
            salt_policy: SaltPolicy::Content,
            check: false,
            pool_capacity: 4,
            cache_capacity: 64,
        }
    }
}

/// Why a submission was rejected (the job never entered the queue).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity; retry after a poll/drain.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The submitting tenant's bounded admission queue is at capacity
    /// (other tenants may still be admitted). Raised by the serve-layer
    /// admission controller, not the core scheduler.
    TenantQueueFull {
        /// The tenant whose queue is full.
        tenant: String,
        /// That tenant's configured queue capacity.
        capacity: usize,
    },
    /// The service is shedding load and this tenant's priority class is
    /// being refused outright (lowest priority sheds first). Retry later
    /// or with a higher-priority tenant.
    Shedding {
        /// The tenant being shed.
        tenant: String,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SubmitError::TenantQueueFull { tenant, capacity } => {
                write!(f, "tenant '{tenant}' queue full (capacity {capacity})")
            }
            SubmitError::Shedding { tenant } => {
                write!(f, "overloaded: shedding tenant '{tenant}'")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why one job failed (its batch peers are unaffected).
#[derive(Clone, Debug)]
pub enum JobError {
    /// The pipeline rejected the job's graph (validation or extraction).
    Pipeline(PipelineError),
    /// The job could not join a fused graph without index overflow.
    Union(UnionError),
    /// `--check` audits found violations in the scattered result.
    Audit {
        /// The violated invariants, capped at `lf_check::MAX_VIOLATIONS`
        /// per stage.
        violations: Vec<Violation>,
    },
    /// A scheduler invariant was violated for this job (e.g. it reached
    /// extraction without a prepared graph). These used to be `unwrap`
    /// panics that took the whole service down; now the one job fails
    /// and its batch peers complete normally.
    Internal {
        /// Which invariant broke, for the job's error report.
        detail: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Pipeline(e) => write!(f, "{e}"),
            JobError::Union(e) => write!(f, "{e}"),
            JobError::Audit { violations } => {
                write!(f, "{} audit violation(s)", violations.len())?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            JobError::Internal { detail } => {
                write!(f, "internal scheduler invariant violated: {detail}")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// A successful extraction, scattered back to the job's own vertex space.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The extracted linear forest (solo-equivalent; see [`crate::fuse`]).
    pub forest: LinearForest<f64>,
    /// Quality statistics against the originally submitted matrix.
    pub quality: QualityReport,
}

/// Per-job outcome: every submitted job produces exactly one, success or
/// failure, in submission order within its batch.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Job ID assigned at submission.
    pub id: u64,
    /// Caller-supplied job name.
    pub name: String,
    /// Charge salt the extraction ran under (content-derived, or 0 under
    /// [`SaltPolicy::Solo`]).
    pub salt: u32,
    /// Whether the prepared graph came from the LRU cache.
    pub cache_hit: bool,
    /// Sequence number of the batch that executed the job.
    pub batch: u64,
    /// nnz of the prepared graph (0 if preparation failed).
    pub nnz: usize,
    /// The job's correlation identity: caller-supplied via
    /// [`ExtractionService::submit_traced`], or minted deterministically
    /// from the scheduler job id under tenant `"cli"`.
    pub ctx: TraceContext,
    /// The job's assembled lifecycle timeline (queue wait, close reason,
    /// per-stage modeled time attributed by nnz share).
    pub timeline: JobTimeline,
    /// The extraction result or the job's own error.
    pub result: Result<JobResult, JobError>,
}

struct Job {
    id: u64,
    name: String,
    a: Arc<Csr<f64>>,
    prepared: Result<Arc<Csr<f64>>, PipelineError>,
    salt: u32,
    cache_hit: bool,
    submitted_at: Instant,
    ctx: TraceContext,
}

/// Batch-level facts shared by every member's timeline.
#[derive(Clone, Copy)]
struct BatchMeta {
    batch: u64,
    reason: &'static str,
    batch_jobs: usize,
    batch_nnz: usize,
}

impl Job {
    fn nnz(&self) -> usize {
        self.prepared.as_ref().map_or(0, |p| p.nnz())
    }

    /// The job's prepared graph, or a typed [`JobError::Internal`] when
    /// the batch-partition invariant ("jobs past the validity split have
    /// one") does not hold. Resolving it through this method instead of
    /// `unwrap()` keeps a scheduler bug contained to the affected job.
    fn resolve_prepared(&self) -> Result<Arc<Csr<f64>>, JobError> {
        #[cfg(test)]
        if fault::loses_prepared(&self.name) {
            return Err(JobError::Internal {
                detail: format!("prepared graph for job '{}' is gone (injected fault)", self.name),
            });
        }
        match &self.prepared {
            Ok(p) => Ok(Arc::clone(p)),
            Err(e) => Err(JobError::Internal {
                detail: format!("job '{}' crossed the validity split unprepared: {e}", self.name),
            }),
        }
    }
}

/// Test-only fault injection: report one named job's prepared graph as
/// missing at use time, exercising the [`JobError::Internal`] path.
#[cfg(test)]
pub(crate) mod fault {
    use std::sync::Mutex;

    static LOSE_PREPARED: Mutex<Option<String>> = Mutex::new(None);

    pub(crate) fn lose_prepared_for(name: Option<&str>) {
        *LOSE_PREPARED.lock().unwrap() = name.map(String::from);
    }

    pub(crate) fn loses_prepared(name: &str) -> bool {
        LOSE_PREPARED.lock().unwrap().as_deref() == Some(name)
    }
}

/// The multi-tenant extraction service. See the module docs for the
/// scheduling model and [`crate::fuse`] for the determinism argument.
pub struct ExtractionService {
    cfg: BatchConfig,
    queue: VecDeque<Job>,
    pool: WorkspacePool,
    cache: CsrCache,
    clock: Arc<dyn Clock>,
    next_id: u64,
    batch_seq: u64,
}

impl ExtractionService {
    /// Create a service.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotPathFactor`] when `cfg.factor.n != 2`: linear
    /// forests are [0,2]-factors, and rejecting the configuration here is
    /// cheaper than failing every job.
    pub fn new(cfg: BatchConfig) -> Result<Self, PipelineError> {
        Self::with_clock(cfg, Arc::new(MonotonicClock))
    }

    /// Create a service reading "now" from `clock` when driven through the
    /// clocked entry points ([`Self::submit_now`], [`Self::poll_now`]).
    /// The explicit-instant methods never consult the clock, so a service
    /// driven synchronously behaves identically whatever clock it holds.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NotPathFactor`] when `cfg.factor.n != 2` (see
    /// [`Self::new`]).
    pub fn with_clock(cfg: BatchConfig, clock: Arc<dyn Clock>) -> Result<Self, PipelineError> {
        if cfg.factor.n != 2 {
            return Err(PipelineError::NotPathFactor { n: cfg.factor.n });
        }
        Ok(Self {
            queue: VecDeque::new(),
            pool: WorkspacePool::new(cfg.pool_capacity),
            cache: CsrCache::new(cfg.cache_capacity),
            clock,
            next_id: 0,
            batch_seq: 0,
            cfg,
        })
    }

    /// Service configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// The service's time source (only the `*_now` entry points read it).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Number of queued jobs.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Submit a graph for extraction at time `now`; returns the job ID.
    /// Preparation (`A' = |A| − diag|A|`, symmetrized) happens here,
    /// served from the content-hash cache when possible; validation
    /// errors are recorded on the job and surface in its outcome, never
    /// poisoning a batch.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity;
    /// the job is not enqueued.
    pub fn submit(
        &mut self,
        name: impl Into<String>,
        a: Csr<f64>,
        now: Instant,
    ) -> Result<u64, SubmitError> {
        self.submit_inner(name.into(), a, now, None)
    }

    /// [`Self::submit`] with a caller-supplied correlation identity (the
    /// serve ingress mints one per HTTP request, possibly from an inbound
    /// `traceparent` header, and threads it here). Without this entry
    /// point the scheduler mints its own context under tenant `"cli"`.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit`].
    pub fn submit_traced(
        &mut self,
        name: impl Into<String>,
        a: Csr<f64>,
        now: Instant,
        ctx: TraceContext,
    ) -> Result<u64, SubmitError> {
        self.submit_inner(name.into(), a, now, Some(ctx))
    }

    fn submit_inner(
        &mut self,
        name: String,
        a: Csr<f64>,
        now: Instant,
        ctx: Option<TraceContext>,
    ) -> Result<u64, SubmitError> {
        if self.queue.len() >= self.cfg.queue_capacity {
            return Err(SubmitError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        let hash = content_hash(&a);
        let salt = match self.cfg.salt_policy {
            SaltPolicy::Content => salt_from_hash(hash),
            SaltPolicy::Solo => 0,
        };
        let a = Arc::new(a);
        let mut cache_hit = false;
        let prepared = if a.nrows() != a.ncols() {
            Err(PipelineError::NonSquareMatrix {
                nrows: a.nrows(),
                ncols: a.ncols(),
            })
        } else if let Some(p) = self.cache.get(hash) {
            cache_hit = true;
            Ok(p)
        } else {
            match validate_finite(prepare_undirected(&a)) {
                Ok(p) => {
                    let p = Arc::new(p);
                    self.cache.insert(hash, p.clone());
                    Ok(p)
                }
                Err(e) => Err(e),
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        let ctx = ctx.unwrap_or_else(|| TraceContext::minted(id, "cli"));
        self.queue.push_back(Job {
            id,
            name,
            a,
            prepared,
            salt,
            cache_hit,
            submitted_at: now,
            ctx,
        });
        stats::submitted(self.queue.len());
        record_queue_depth(self.queue.len());
        if lf_flight::enabled() {
            if let Some(j) = self.queue.back() {
                lf_flight::record(lf_flight::FlightEvent::JobSubmit {
                    id,
                    name: j.name.clone(),
                    nnz: j.nnz() as u64,
                    cache_hit: j.cache_hit,
                    trace: j.ctx.trace_id,
                });
            }
        }
        Ok(id)
    }

    /// Whether a batch would close right now (budget, count, or deadline).
    pub fn batch_ready(&self, now: Instant) -> bool {
        self.close_reason(now).is_some()
    }

    /// Why a batch would close right now: `"count"` (job cap), `"nnz"`
    /// (budget full), or `"deadline"` (oldest job waited too long) — the
    /// first matching rule, in that priority order. `None` means the queue
    /// keeps accumulating.
    pub fn close_reason(&self, now: Instant) -> Option<&'static str> {
        if self.queue.is_empty() {
            return None;
        }
        if self.queue.len() >= self.cfg.max_batch_jobs {
            return Some("count");
        }
        let nnz: usize = self.queue.iter().map(Job::nnz).sum();
        if nnz >= self.cfg.nnz_budget {
            return Some("nnz");
        }
        (now.duration_since(self.queue[0].submitted_at) >= self.cfg.deadline)
            .then_some("deadline")
    }

    /// Run batches while one is ready at time `now`; returns the outcomes
    /// (possibly empty). Jobs left queued are waiting for more work or
    /// their deadline.
    pub fn poll(&mut self, dev: &Device, now: Instant) -> Vec<JobOutcome> {
        let mut out = Vec::new();
        while let Some(reason) = self.close_reason(now) {
            record_close(reason);
            let jobs = self.form_batch();
            out.extend(self.run_batch(dev, jobs, now, reason));
        }
        out
    }

    /// [`Self::submit`] at the service clock's current time.
    ///
    /// # Errors
    ///
    /// Same as [`Self::submit`].
    pub fn submit_now(&mut self, name: impl Into<String>, a: Csr<f64>) -> Result<u64, SubmitError> {
        let now = self.clock.now();
        self.submit(name, a, now)
    }

    /// [`Self::poll`] at the service clock's current time.
    pub fn poll_now(&mut self, dev: &Device) -> Vec<JobOutcome> {
        let now = self.clock.now();
        self.poll(dev, now)
    }

    /// Flush the queue completely, deadline or not.
    pub fn drain(&mut self, dev: &Device) -> Vec<JobOutcome> {
        let now = self.clock.now();
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            record_close("drain");
            let jobs = self.form_batch();
            out.extend(self.run_batch(dev, jobs, now, "drain"));
        }
        out
    }

    /// Pop the next batch off the queue: jobs in submission order until
    /// the count cap, or until adding one more would blow the nnz budget
    /// (the first job always fits, so oversized jobs still run).
    fn form_batch(&mut self) -> Vec<Job> {
        let mut batch = Vec::new();
        let mut nnz = 0usize;
        while let Some(next) = self.queue.front() {
            if !batch.is_empty()
                && (batch.len() >= self.cfg.max_batch_jobs
                    || nnz + next.nnz() > self.cfg.nnz_budget)
            {
                break;
            }
            nnz += next.nnz();
            batch.push(self.queue.pop_front().unwrap());
        }
        batch
    }

    fn run_batch(
        &mut self,
        dev: &Device,
        jobs: Vec<Job>,
        now: Instant,
        reason: &'static str,
    ) -> Vec<JobOutcome> {
        self.batch_seq += 1;
        let batch = self.batch_seq;
        let batch_jobs = jobs.len();
        // Jobs that never reach the fused graph (validation, union
        // ejection, internal faults) carry this meta: no fused nnz, no
        // device stages.
        let failed = BatchMeta {
            batch,
            reason,
            batch_jobs,
            batch_nnz: 0,
        };
        let tracer = dev.tracer().clone();
        let _span = tracer.span_dyn(|| format!("batch_{batch}"));

        // Jobs that failed validation at submit time fail alone here;
        // every other job resolves its prepared graph exactly once, and a
        // job that cannot (a scheduler bug, or the test-only fault hook)
        // fails with a typed `JobError::Internal` instead of panicking
        // the whole service.
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());
        let mut ready: Vec<(Job, Arc<Csr<f64>>)> = Vec::with_capacity(jobs.len());
        for j in jobs {
            if let Err(e) = &j.prepared {
                let err = JobError::Pipeline(e.clone());
                outcomes.push(finish(j, failed, Vec::new(), Err(err), now));
                continue;
            }
            match j.resolve_prepared() {
                Ok(p) => ready.push((j, p)),
                Err(e) => outcomes.push(finish(j, failed, Vec::new(), Err(e), now)),
            }
        }

        // Fuse, ejecting any part the fused index space cannot hold.
        let mut ws = self.pool.acquire();
        let fused = loop {
            if ready.is_empty() {
                self.pool.release(ws);
                return outcomes;
            }
            let parts: Vec<&Csr<f64>> = ready.iter().map(|(_, p)| p.as_ref()).collect();
            let salts: Vec<u32> = ready.iter().map(|(j, _)| j.salt).collect();
            match FusedBatch::fuse_reusing(&parts, &salts, std::mem::take(&mut ws.keys)) {
                Ok(f) => break f,
                Err(e) => {
                    let at = match e {
                        UnionError::ColumnOverflow { part } => part,
                        UnionError::SizeOverflow { part } => part,
                    };
                    let (j, _) = ready.remove(at);
                    outcomes.push(finish(j, failed, Vec::new(), Err(JobError::Union(e)), now));
                }
            }
        };
        let meta = BatchMeta {
            batch,
            reason,
            batch_jobs,
            batch_nnz: fused.graph.nnz(),
        };

        // Correlation markers: one short-lived span per batch member,
        // nested under the batch span, so the span tree joins each fused
        // run back to the jobs it served. Kernel launches still attribute
        // to the batch span (the markers close before extraction starts).
        if tracer.is_active() {
            for (j, _) in &ready {
                let _marker = tracer.span_correlated(&format!("job_{}", j.ctx.job_id), &j.ctx);
            }
        }

        stats::batch_run(ready.len(), fused.graph.nnz());
        record_queue_depth(self.queue.len());
        if lf_metrics::enabled() {
            use lf_metrics::Unit;
            let m = lf_metrics::global();
            m.histogram(
                "lf_batch_jobs_per_batch",
                "Jobs fused into each executed batch.",
                Unit::Count,
            )
            .record(ready.len() as u64);
            m.histogram(
                "lf_batch_fused_nnz",
                "nnz of the fused block-diagonal graph per batch.",
                Unit::Count,
            )
            .record(fused.graph.nnz() as u64);
        }
        if tracer.is_active() {
            tracer.metric("batch_jobs", ready.len() as f64);
            tracer.metric("fused_nnz", fused.graph.nnz() as f64);
            tracer.metric("fused_vertices", fused.graph.nrows() as f64);
            tracer.metric(
                "batch_occupancy",
                fused.graph.nnz() as f64 / self.cfg.nnz_budget as f64,
            );
            tracer.metric("queue_depth", self.queue.len() as f64);
            let c = stats::counters();
            tracer.metric("cache_hit_rate", c.cache_hit_rate());
        }

        let extraction = extract_linear_forest_with(
            dev,
            &fused.graph,
            &self.cfg.factor,
            Some(&fused.charge_keys),
            &mut ws.factor,
        );

        match extraction {
            Ok((forest, timings)) => {
                // Split each stage's modeled time across the batch by
                // prepared-nnz share (exact integer split; see
                // [`crate::timeline`]).
                let nnzs: Vec<usize> = ready.iter().map(|(_, p)| p.nnz()).collect();
                let mut stages = attribute_stages(&timings, &nnzs).into_iter();
                let scattered = scatter_forests(&forest, &fused.offsets);
                for ((j, p), f) in ready.into_iter().zip(scattered) {
                    let s = stages.next().unwrap_or_default();
                    outcomes.push(self.finish_extracted(j, &p, meta, s, f, now));
                }
            }
            Err(fused_err) => {
                // The fused run failed as a whole; re-run each member solo
                // so only the culpable graph reports the error.
                let _s = tracer.span("batch_solo_fallback");
                let _ = fused_err;
                for (j, prepared) in ready {
                    let cfg = self.cfg.factor.with_charge_salt(j.salt);
                    match extract_linear_forest_with(dev, &prepared, &cfg, None, &mut ws.factor)
                    {
                        Ok((forest, timings)) => {
                            // Solo re-run: the job owns the whole stage.
                            let stages = attribute_stages(&timings, &[prepared.nnz()])
                                .pop()
                                .unwrap_or_default();
                            outcomes.push(
                                self.finish_extracted(j, &prepared, meta, stages, forest, now),
                            )
                        }
                        Err(e) => outcomes.push(finish(
                            j,
                            meta,
                            Vec::new(),
                            Err(JobError::Pipeline(e)),
                            now,
                        )),
                    }
                }
            }
        }

        // Hand the charge-key buffer back to the pooled workspace.
        ws.keys = fused.charge_keys;
        self.pool.release(ws);
        outcomes
    }

    fn finish_extracted(
        &self,
        j: Job,
        prepared: &Csr<f64>,
        meta: BatchMeta,
        stages: Vec<StageSlice>,
        forest: LinearForest<f64>,
        now: Instant,
    ) -> JobOutcome {
        if self.cfg.check {
            let mut violations = audit_input(prepared);
            // Per-block maximality is not certified by the fused run (the
            // global flag covers all blocks only when every block
            // converged), so the factor audit checks invariants 1–2 only.
            violations.extend(audit_factor(&forest.factor, prepared, 2, false));
            violations.extend(audit_paths(&forest.factor, &forest.paths));
            violations.extend(audit_permutation(&forest.factor, &forest.paths, &forest.perm));
            if !violations.is_empty() {
                stats::audit_violations(violations.len());
                return finish(j, meta, stages, Err(JobError::Audit { violations }), now);
            }
        }
        let quality = forest.quality_report(&j.a, None);
        finish(j, meta, stages, Ok(JobResult { forest, quality }), now)
    }

    /// Publish this service's workspace-pool and prepared-graph-cache
    /// occupancy as `shard`-labeled gauges in the lf-metrics registry.
    /// Worker shards call it after each scheduling step so cache
    /// effectiveness under multi-tenant traffic is visible per shard on
    /// the Prometheus surface.
    pub fn publish_occupancy(&self, shard: &str) {
        if !lf_metrics::enabled() {
            return;
        }
        let m = lf_metrics::global();
        let series: [(&str, &str, f64); 6] = [
            (
                "lf_batch_pool_idle",
                "Idle workspaces pooled, per worker shard.",
                self.pool.idle() as f64,
            ),
            (
                "lf_batch_pool_occupancy",
                "Fraction of pool slots holding a warm workspace, per worker shard.",
                if self.pool.capacity() == 0 {
                    0.0
                } else {
                    self.pool.idle() as f64 / self.pool.capacity() as f64
                },
            ),
            (
                "lf_batch_shard_pool_hits",
                "Workspace checkouts served from the pool, per worker shard.",
                self.pool.hits() as f64,
            ),
            (
                "lf_batch_shard_cache_entries",
                "Prepared graphs resident in the LRU cache, per worker shard.",
                self.cache.len() as f64,
            ),
            (
                "lf_batch_shard_cache_hits",
                "Prepared-graph cache hits, per worker shard.",
                self.cache.hits() as f64,
            ),
            (
                "lf_batch_shard_cache_misses",
                "Prepared-graph cache misses, per worker shard.",
                self.cache.misses() as f64,
            ),
        ];
        for (name, help, v) in series {
            m.gauge_with(name, help, ("shard", shard)).set(v);
        }
    }

    /// Point-in-time pool/cache occupancy of this service instance, as a
    /// JSON object (the per-shard view `lf stats --json` and
    /// `lf batch --json` embed next to the process-wide counters).
    pub fn occupancy_json(&self) -> String {
        format!(
            concat!(
                "{{\"pool_idle\":{},\"pool_capacity\":{},\"pool_hits\":{},",
                "\"pool_misses\":{},\"cache_entries\":{},\"cache_capacity\":{},",
                "\"cache_hits\":{},\"cache_misses\":{}}}"
            ),
            self.pool.idle(),
            self.pool.capacity(),
            self.pool.hits(),
            self.pool.misses(),
            self.cache.len(),
            self.cache.capacity(),
            self.cache.hits(),
            self.cache.misses(),
        )
    }
}

/// Count one batch close in the metrics registry (by reason) and in the
/// flight ring.
fn record_close(reason: &'static str) {
    if lf_flight::enabled() {
        lf_flight::record(lf_flight::FlightEvent::BatchClose {
            reason: reason.to_string(),
        });
    }
    if lf_metrics::enabled() {
        lf_metrics::global()
            .counter_with(
                "lf_batch_close_total",
                "Batches closed, by trigger (count cap, nnz budget, deadline, drain).",
                ("reason", reason),
            )
            .inc();
    }
}

/// Publish the current queue depth gauge.
fn record_queue_depth(depth: usize) {
    if lf_metrics::enabled() {
        lf_metrics::global()
            .gauge("lf_batch_queue_depth", "Jobs waiting in the submission queue.")
            .set(depth as f64);
    }
}

/// Scan a prepared graph for non-finite weights (NaN poisons every weight
/// comparison downstream; better a typed error at the door).
fn validate_finite(p: Csr<f64>) -> Result<Csr<f64>, PipelineError> {
    for (i, j, w) in p.iter() {
        if !w.is_finite() {
            return Err(PipelineError::NonFiniteWeight {
                row: i as usize,
                col: j as usize,
            });
        }
    }
    Ok(p)
}

fn finish(
    j: Job,
    meta: BatchMeta,
    stages: Vec<StageSlice>,
    result: Result<JobResult, JobError>,
    now: Instant,
) -> JobOutcome {
    match &result {
        Ok(_) => stats::completed(),
        Err(_) => stats::failed(),
    }
    let nnz = j.nnz();
    // Queue wait is measured against the scheduling clock's "now", not
    // wall time, so model-clock runs observe deterministic waits.
    let waited = now.saturating_duration_since(j.submitted_at);
    let timeline = JobTimeline {
        ctx: j.ctx.clone(),
        queue_wait_ns: waited.as_nanos() as u64,
        close_reason: meta.reason,
        batch: meta.batch,
        batch_jobs: meta.batch_jobs,
        cache_hit: j.cache_hit,
        nnz,
        batch_nnz: meta.batch_nnz,
        stages,
    };
    if lf_flight::enabled() {
        let outcome = match &result {
            Ok(_) => "ok",
            Err(JobError::Pipeline(_)) => "pipeline",
            Err(JobError::Union(_)) => "union",
            Err(JobError::Audit { .. }) => "audit",
            Err(JobError::Internal { .. }) => "internal",
        };
        lf_flight::record(lf_flight::FlightEvent::JobOutcome {
            id: j.id,
            batch: meta.batch,
            outcome: outcome.to_string(),
            trace: j.ctx.trace_id,
        });
        if let Err(e) = &result {
            lf_flight::record(lf_flight::FlightEvent::Error {
                kind: "job".to_string(),
                message: format!("job #{} '{}': {e}", j.id, j.name),
            });
        }
    }
    if lf_metrics::enabled() {
        let outcome = match &result {
            Ok(_) => "ok",
            Err(JobError::Pipeline(_)) => "pipeline",
            Err(JobError::Union(_)) => "union",
            Err(JobError::Audit { .. }) => "audit",
            Err(JobError::Internal { .. }) => "internal",
        };
        let m = lf_metrics::global();
        m.counter_with(
            "lf_batch_jobs_total",
            "Finished jobs, by outcome (ok or the job's error kind).",
            ("outcome", outcome),
        )
        .inc();
        m.histogram(
            "lf_batch_job_seconds",
            "Submit-to-outcome latency per job.",
            lf_metrics::Unit::Nanos,
        )
        .record_f64_traced(waited.as_nanos() as f64, j.ctx.trace_id);
    }
    JobOutcome {
        id: j.id,
        name: j.name,
        salt: j.salt,
        cache_hit: j.cache_hit,
        batch: meta.batch,
        nnz,
        ctx: j.ctx,
        timeline,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lf_core::extract_linear_forest;
    use lf_sparse::random::random_symmetric;
    use lf_sparse::Coo;

    fn svc(cfg: BatchConfig) -> ExtractionService {
        ExtractionService::new(cfg).unwrap()
    }

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn rejects_non_path_factor_config() {
        let cfg = BatchConfig {
            factor: FactorConfig::paper_default(3),
            ..BatchConfig::default()
        };
        let err = match ExtractionService::new(cfg) {
            Err(e) => e,
            Ok(_) => panic!("n = 3 must be rejected"),
        };
        assert_eq!(err, PipelineError::NotPathFactor { n: 3 });
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let _g = crate::stats::test_guard();
        let mut s = svc(BatchConfig {
            queue_capacity: 2,
            ..BatchConfig::default()
        });
        let now = t0();
        s.submit("a", random_symmetric(10, 2.0, 0.1, 1.0, 1), now).unwrap();
        s.submit("b", random_symmetric(10, 2.0, 0.1, 1.0, 2), now).unwrap();
        assert_eq!(
            s.submit("c", random_symmetric(10, 2.0, 0.1, 1.0, 3), now),
            Err(SubmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(s.queue_depth(), 2);
    }

    #[test]
    fn poisoned_jobs_fail_alone() {
        let _g = crate::stats::test_guard();
        crate::stats::reset_stats();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let now = t0();
        s.submit("good1", random_symmetric(40, 3.0, 0.1, 1.0, 5), now).unwrap();
        s.submit("rect", Csr::zeros(3, 4), now).unwrap();
        let mut nan = Coo::<f64>::new(4, 4);
        nan.push_sym(0, 1, f64::NAN);
        s.submit("nan", Csr::from_coo(nan), now).unwrap();
        s.submit("good2", random_symmetric(30, 3.0, 0.1, 1.0, 6), now).unwrap();
        let out = s.drain(&dev);
        assert_eq!(out.len(), 4);
        let by_name = |n: &str| out.iter().find(|o| o.name == n).unwrap();
        assert!(by_name("good1").result.is_ok());
        assert!(by_name("good2").result.is_ok());
        assert!(matches!(
            by_name("rect").result,
            Err(JobError::Pipeline(PipelineError::NonSquareMatrix { nrows: 3, ncols: 4 }))
        ));
        assert!(matches!(
            by_name("nan").result,
            Err(JobError::Pipeline(PipelineError::NonFiniteWeight { .. }))
        ));
        let c = stats::counters();
        assert_eq!(c.jobs_submitted, 4);
        assert_eq!(c.jobs_completed, 2);
        assert_eq!(c.jobs_failed, 2);
        assert_eq!(c.batches_run, 1);
        assert_eq!(c.graphs_fused, 2);
    }

    #[test]
    fn injected_internal_fault_fails_one_job_not_the_service() {
        // Regression: the four `j.prepared.as_ref().unwrap()` sites in
        // run_batch turned a broken partition invariant into a process
        // panic. With the typed JobError::Internal path, the faulted job
        // fails alone, its peers complete, and the service keeps
        // draining afterwards.
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let now = t0();
        s.submit("peer1", random_symmetric(30, 3.0, 0.1, 1.0, 21), now).unwrap();
        s.submit("doomed-by-fault", random_symmetric(30, 3.0, 0.1, 1.0, 22), now).unwrap();
        s.submit("peer2", random_symmetric(30, 3.0, 0.1, 1.0, 23), now).unwrap();
        fault::lose_prepared_for(Some("doomed-by-fault"));
        let out = s.drain(&dev);
        fault::lose_prepared_for(None);
        assert_eq!(out.len(), 3);
        let by_name = |n: &str| out.iter().find(|o| o.name == n).unwrap();
        assert!(by_name("peer1").result.is_ok());
        assert!(by_name("peer2").result.is_ok());
        match &by_name("doomed-by-fault").result {
            Err(JobError::Internal { detail }) => {
                assert!(detail.contains("injected fault"), "{detail}");
            }
            other => panic!("expected JobError::Internal, got {other:?}"),
        }
        // The service is still healthy after the internal failure.
        s.submit("after", random_symmetric(20, 2.0, 0.1, 1.0, 24), now).unwrap();
        let out = s.drain(&dev);
        assert_eq!(out.len(), 1);
        assert!(out[0].result.is_ok());
    }

    #[test]
    fn batch_forms_on_budget_count_and_deadline() {
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let now = t0();

        // Count cap: 3 jobs, max 2 per batch → two batches.
        let mut s = svc(BatchConfig {
            max_batch_jobs: 2,
            ..BatchConfig::default()
        });
        for i in 0..3 {
            s.submit(format!("j{i}"), random_symmetric(20, 2.0, 0.1, 1.0, i), now)
                .unwrap();
        }
        let out = s.drain(&dev);
        assert_eq!(out.iter().filter(|o| o.batch == out[0].batch).count(), 2);
        assert_eq!(out.len(), 3);

        // nnz budget: each graph ~20 edges ≈ 40+ nnz; a tiny budget forms
        // singleton batches (the first job always fits).
        let mut s = svc(BatchConfig {
            nnz_budget: 1,
            ..BatchConfig::default()
        });
        s.submit("a", random_symmetric(20, 2.0, 0.1, 1.0, 1), now).unwrap();
        s.submit("b", random_symmetric(20, 2.0, 0.1, 1.0, 2), now).unwrap();
        let out = s.drain(&dev);
        assert_ne!(out[0].batch, out[1].batch, "budget split into batches");

        // Deadline: below budget and count, nothing runs until time passes.
        let mut s = svc(BatchConfig {
            deadline: Duration::from_secs(3600),
            ..BatchConfig::default()
        });
        s.submit("w", random_symmetric(20, 2.0, 0.1, 1.0, 3), now).unwrap();
        assert!(s.poll(&dev, now).is_empty());
        assert_eq!(s.queue_depth(), 1);
        let later = now + Duration::from_secs(3601);
        let out = s.poll(&dev, later);
        assert_eq!(out.len(), 1);
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn repeated_submissions_hit_cache_and_match() {
        let _g = crate::stats::test_guard();
        crate::stats::reset_stats();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let g = random_symmetric(50, 3.0, 0.1, 1.0, 9);
        let now = t0();
        s.submit("first", g.clone(), now).unwrap();
        let first = s.drain(&dev).pop().unwrap();
        assert!(!first.cache_hit);
        s.submit("again", g, now).unwrap();
        let again = s.drain(&dev).pop().unwrap();
        assert!(again.cache_hit, "same content must hit the cache");
        assert!(stats::counters().cache_hits >= 1);
        let (a, b) = (first.result.unwrap(), again.result.unwrap());
        assert_eq!(a.forest.factor, b.forest.factor);
        assert_eq!(a.forest.perm, b.forest.perm);
        assert_eq!(a.quality, b.quality);
    }

    #[test]
    fn batched_results_equal_solo_runs() {
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let graphs: Vec<Csr<f64>> = (0..4)
            .map(|i| random_symmetric(35 + 7 * i, 3.0, 0.1, 1.0, 100 + i as u64))
            .collect();
        let now = t0();
        for (i, g) in graphs.iter().enumerate() {
            s.submit(format!("g{i}"), g.clone(), now).unwrap();
        }
        let out = s.drain(&dev);
        assert_eq!(out.len(), graphs.len());
        for (o, g) in out.iter().zip(&graphs) {
            let prepared = prepare_undirected(g);
            let cfg = s.config().factor.with_charge_salt(o.salt);
            let (solo, _) = extract_linear_forest(&dev, &prepared, &cfg).unwrap();
            let got = o.result.as_ref().unwrap();
            assert_eq!(got.forest.factor, solo.factor);
            assert_eq!(got.forest.paths, solo.paths);
            assert_eq!(got.forest.perm, solo.perm);
            assert_eq!(got.quality, solo.quality_report(g, None));
        }
    }

    #[test]
    fn service_feeds_metrics_registry_when_enabled() {
        let _g = crate::stats::test_guard();
        crate::stats::reset_stats(); // also clears the metrics registry
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let now = t0();
        lf_metrics::enable();
        s.submit("ok1", random_symmetric(30, 3.0, 0.1, 1.0, 70), now).unwrap();
        s.submit("bad", Csr::zeros(2, 3), now).unwrap();
        let out = s.drain(&dev);
        lf_metrics::disable();
        assert_eq!(out.len(), 2);
        let snap = lf_metrics::global().snapshot();
        let family = |n: &str| snap.families.iter().find(|f| f.name == n);
        let jobs = family("lf_batch_jobs_total").expect("job outcome counters");
        let count_of = |label: &str| {
            jobs.series
                .iter()
                .find(|x| x.label.as_deref() == Some(label))
                .map(|x| match x.value {
                    lf_metrics::ValueSnapshot::Counter(n) => n,
                    _ => 0,
                })
        };
        assert_eq!(count_of("ok"), Some(1));
        assert_eq!(count_of("pipeline"), Some(1));
        let closes = family("lf_batch_close_total").expect("close reason counters");
        assert!(closes
            .series
            .iter()
            .any(|x| x.label.as_deref() == Some("drain")));
        for n in ["lf_batch_queue_depth", "lf_batch_jobs_per_batch", "lf_batch_job_seconds"] {
            assert!(family(n).is_some(), "missing family {n}");
        }
    }

    #[test]
    fn model_clock_drives_deadline_closing() {
        // The latent issue this PR fixes: deadline-aware closing had no
        // real-time source. Under a ModelClock the clocked entry points
        // observe exactly the advanced model time — nothing runs before
        // the deadline, everything runs after, with no wall-clock races.
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let clock = crate::clock::ModelClock::shared();
        let mut s = ExtractionService::with_clock(
            BatchConfig {
                deadline: Duration::from_millis(50),
                ..BatchConfig::default()
            },
            clock.clone(),
        )
        .unwrap();
        s.submit_now("j", random_symmetric(25, 2.0, 0.1, 1.0, 11)).unwrap();
        clock.advance(Duration::from_millis(49));
        assert!(s.poll_now(&dev).is_empty(), "deadline not reached yet");
        clock.advance(Duration::from_millis(1));
        let out = s.poll_now(&dev);
        assert_eq!(out.len(), 1);
        assert!(out[0].result.is_ok());
    }

    #[test]
    fn solo_salt_policy_matches_unsalted_solo_run() {
        // SaltPolicy::Solo pins every job's salt to 0; salted_key(v, 0)
        // is the identity, so a fused batch result must be bit-identical
        // to a plain (unsalted) solo extraction — the guarantee the HTTP
        // serve path relies on for POST-vs-CLI bit-equality.
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let mut s = svc(BatchConfig {
            salt_policy: SaltPolicy::Solo,
            ..BatchConfig::default()
        });
        let graphs: Vec<Csr<f64>> = (0..3)
            .map(|i| random_symmetric(30 + 5 * i, 3.0, 0.1, 1.0, 200 + i as u64))
            .collect();
        let now = t0();
        for (i, g) in graphs.iter().enumerate() {
            s.submit(format!("g{i}"), g.clone(), now).unwrap();
        }
        let out = s.drain(&dev);
        assert_eq!(out.len(), graphs.len());
        for (o, g) in out.iter().zip(&graphs) {
            assert_eq!(o.salt, 0);
            let prepared = prepare_undirected(g);
            let cfg = s.config().factor; // charge_salt stays at its 0 default
            let (solo, _) = extract_linear_forest(&dev, &prepared, &cfg).unwrap();
            let got = o.result.as_ref().unwrap();
            assert_eq!(got.forest.factor, solo.factor);
            assert_eq!(got.forest.paths, solo.paths);
            assert_eq!(got.forest.perm, solo.perm);
        }
    }

    #[test]
    fn occupancy_json_reflects_pool_and_cache() {
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let g = random_symmetric(30, 2.0, 0.1, 1.0, 77);
        let now = t0();
        s.submit("a", g.clone(), now).unwrap();
        s.drain(&dev);
        s.submit("b", g, now).unwrap();
        s.drain(&dev);
        let j = s.occupancy_json();
        assert!(j.contains("\"cache_hits\":1"), "{j}");
        assert!(j.contains("\"cache_entries\":1"), "{j}");
        assert!(j.contains("\"pool_idle\":1"), "{j}");
        assert!(j.contains("\"pool_misses\":1"), "{j}");
    }

    #[test]
    fn publish_occupancy_exports_shard_labeled_gauges() {
        let _g = crate::stats::test_guard();
        crate::stats::reset_stats();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let now = t0();
        s.submit("a", random_symmetric(30, 2.0, 0.1, 1.0, 78), now).unwrap();
        s.drain(&dev);
        lf_metrics::enable();
        s.publish_occupancy("w0");
        lf_metrics::disable();
        let snap = lf_metrics::global().snapshot();
        for name in ["lf_batch_pool_idle", "lf_batch_shard_cache_entries"] {
            let f = snap
                .families
                .iter()
                .find(|f| f.name == name)
                .unwrap_or_else(|| panic!("missing family {name}"));
            let x = f
                .series
                .iter()
                .find(|x| x.label.as_deref() == Some("w0"))
                .unwrap_or_else(|| panic!("missing shard series in {name}"));
            match x.value {
                lf_metrics::ValueSnapshot::Gauge(v) => {
                    assert!((v - 1.0).abs() < 1e-12, "{name} = {v}")
                }
                _ => panic!("{name} must be a gauge"),
            }
        }
    }

    #[test]
    fn outcomes_carry_minted_contexts_and_timelines() {
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let now = t0();
        for i in 0..3 {
            s.submit(format!("g{i}"), random_symmetric(30 + 5 * i, 3.0, 0.1, 1.0, 300 + i as u64), now)
                .unwrap();
        }
        let out = s.drain(&dev);
        assert_eq!(out.len(), 3);
        for o in &out {
            // Direct submissions mint under the "cli" tenant from the
            // scheduler job id.
            assert_eq!(o.ctx, TraceContext::minted(o.id, "cli"));
            assert_ne!(o.ctx.trace_id, 0);
            let t = &o.timeline;
            assert_eq!(t.ctx, o.ctx);
            assert_eq!(t.close_reason, "drain");
            assert_eq!(t.batch, o.batch);
            assert_eq!(t.batch_jobs, 3);
            assert_eq!(t.nnz, o.nnz);
            assert!(t.batch_nnz >= t.nnz);
            let names: Vec<&str> = t.stages.iter().map(|s| s.stage).collect();
            assert_eq!(
                names,
                ["factor", "identify_cycles", "identify_paths", "permutation", "extraction"]
            );
            assert!(t.total_model_ns() > 0, "fused model time attributed");
            lf_trace::json::validate(&t.to_json()).unwrap();
        }
        // Distinct jobs, distinct trace ids.
        assert_ne!(out[0].ctx.trace_id, out[1].ctx.trace_id);
        // Per stage, member slices sum to one common batch total.
        let batch_nnz = out[0].timeline.batch_nnz;
        assert!(out.iter().all(|o| o.timeline.batch_nnz == batch_nnz));
    }

    #[test]
    fn submit_traced_threads_the_callers_context() {
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let mut s = svc(BatchConfig::default());
        let now = t0();
        let ctx = TraceContext::new(0xdead_beef, 42, "acme");
        s.submit_traced("traced", random_symmetric(25, 2.0, 0.1, 1.0, 31), now, ctx.clone())
            .unwrap();
        // A failing job keeps its context too (empty stages, no fused nnz).
        s.submit_traced("bad", Csr::zeros(2, 3), now, TraceContext::new(0xbad, 43, "acme"))
            .unwrap();
        let out = s.drain(&dev);
        let by_name = |n: &str| out.iter().find(|o| o.name == n).unwrap();
        assert_eq!(by_name("traced").ctx, ctx);
        assert_eq!(by_name("traced").timeline.ctx.tenant, "acme");
        let bad = by_name("bad");
        assert_eq!(bad.ctx.trace_id, 0xbad);
        assert!(bad.timeline.stages.is_empty());
        assert_eq!(bad.timeline.batch_nnz, 0);
        assert_eq!(bad.timeline.total_model_ns(), 0);
    }

    #[test]
    fn model_clock_queue_wait_is_deterministic() {
        let _g = crate::stats::test_guard();
        let dev = Device::default();
        let clock = crate::clock::ModelClock::shared();
        let mut s = ExtractionService::with_clock(
            BatchConfig {
                deadline: Duration::from_millis(5),
                ..BatchConfig::default()
            },
            clock.clone(),
        )
        .unwrap();
        s.submit_now("j", random_symmetric(25, 2.0, 0.1, 1.0, 12)).unwrap();
        clock.advance(Duration::from_millis(7));
        let out = s.poll_now(&dev);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].timeline.queue_wait_ns, 7_000_000);
        assert_eq!(out[0].timeline.close_reason, "deadline");
    }

    #[test]
    fn check_mode_audits_scattered_results() {
        let _g = crate::stats::test_guard();
        crate::stats::reset_stats();
        let dev = Device::default();
        let mut s = svc(BatchConfig {
            check: true,
            ..BatchConfig::default()
        });
        let now = t0();
        for i in 0..3 {
            s.submit(format!("g{i}"), random_symmetric(40, 3.0, 0.1, 1.0, 40 + i), now)
                .unwrap();
        }
        let out = s.drain(&dev);
        assert!(out.iter().all(|o| o.result.is_ok()), "clean graphs audit clean");
        assert_eq!(stats::counters().audit_violations, 0);
    }
}
