//! Process-wide service counters.
//!
//! One atomic registry rather than per-service fields, for the same reason
//! the device keeps global launch statistics: the CLI (`lf stats --json`,
//! `lf batch --json`) and the bench harness read one consistent snapshot
//! without threading a handle through every layer. [`reset_stats`] zeroes
//! the registry; the bench harness calls it between batches so per-batch
//! numbers are not cumulative.

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident / $bump:ident),+ $(,)?) => {
        $(static $name: AtomicU64 = AtomicU64::new(0);)+

        /// A point-in-time snapshot of the service counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        #[allow(non_snake_case)]
        pub struct ServiceCounters {
            $($(#[$doc])* pub $bump: u64,)+
        }

        /// Snapshot all counters.
        pub fn counters() -> ServiceCounters {
            ServiceCounters {
                $($bump: $name.load(Ordering::Relaxed),)+
            }
        }

        /// Zero all counters and drop every family in the process-wide
        /// lf-metrics registry (bench harnesses call this between batches
        /// so neither view is cumulative across reps).
        pub fn reset_stats() {
            $($name.store(0, Ordering::Relaxed);)+
            lf_metrics::global().reset();
        }
    };
}

counters! {
    /// Jobs accepted into the submission queue.
    SUBMITTED / jobs_submitted,
    /// Jobs completed successfully.
    COMPLETED / jobs_completed,
    /// Jobs that failed (typed error in their outcome).
    FAILED / jobs_failed,
    /// Batches executed.
    BATCHES / batches_run,
    /// Graphs fused across all batches.
    FUSED_GRAPHS / graphs_fused,
    /// Total nnz of fused extraction inputs.
    FUSED_NNZ / fused_nnz,
    /// High-water mark of the submission queue depth.
    QUEUE_HIGHWATER / queue_highwater,
    /// Workspace-pool checkouts served from the pool.
    POOL_HITS / pool_hits,
    /// Workspace-pool checkouts that had to allocate.
    POOL_MISSES / pool_misses,
    /// Prepared-graph cache hits.
    CACHE_HITS / cache_hits,
    /// Prepared-graph cache misses.
    CACHE_MISSES / cache_misses,
    /// Audit violations found by `--check` batch runs.
    AUDIT_VIOLATIONS / audit_violations,
}

#[inline]
pub(crate) fn submitted(queue_depth: usize) {
    SUBMITTED.fetch_add(1, Ordering::Relaxed);
    QUEUE_HIGHWATER.fetch_max(queue_depth as u64, Ordering::Relaxed);
}

#[inline]
pub(crate) fn completed() {
    COMPLETED.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn failed() {
    FAILED.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn batch_run(graphs: usize, nnz: usize) {
    BATCHES.fetch_add(1, Ordering::Relaxed);
    FUSED_GRAPHS.fetch_add(graphs as u64, Ordering::Relaxed);
    FUSED_NNZ.fetch_add(nnz as u64, Ordering::Relaxed);
}

#[inline]
pub(crate) fn pool_hit() {
    POOL_HITS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn pool_miss() {
    POOL_MISSES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn cache_hit() {
    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn cache_miss() {
    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn audit_violations(n: usize) {
    AUDIT_VIOLATIONS.fetch_add(n as u64, Ordering::Relaxed);
}

impl ServiceCounters {
    /// Cache hit rate in `[0, 1]`, `0` before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Render as a JSON object (same hand-rolled style as the rest of the
    /// repo's machine-readable output; all fields are exact integers
    /// except the derived hit rate).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"jobs_submitted\":{},\"jobs_completed\":{},\"jobs_failed\":{},",
                "\"batches_run\":{},\"graphs_fused\":{},\"fused_nnz\":{},",
                "\"queue_highwater\":{},\"pool_hits\":{},\"pool_misses\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.6},",
                "\"audit_violations\":{}}}"
            ),
            self.jobs_submitted,
            self.jobs_completed,
            self.jobs_failed,
            self.batches_run,
            self.graphs_fused,
            self.fused_nnz,
            self.queue_highwater,
            self.pool_hits,
            self.pool_misses,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate(),
            self.audit_violations,
        )
    }
}

/// Serializes tests (across this crate's modules) that read or write the
/// global counters; everything else may run in parallel.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = test_guard();
        reset_stats();
        submitted(3);
        submitted(1); // highwater keeps the max
        completed();
        failed();
        batch_run(4, 1000);
        pool_hit();
        pool_miss();
        cache_hit();
        cache_hit();
        cache_miss();
        audit_violations(2);
        let c = counters();
        assert_eq!(c.jobs_submitted, 2);
        assert_eq!(c.queue_highwater, 3);
        assert_eq!(c.jobs_completed, 1);
        assert_eq!(c.jobs_failed, 1);
        assert_eq!((c.batches_run, c.graphs_fused, c.fused_nnz), (1, 4, 1000));
        assert_eq!((c.pool_hits, c.pool_misses), (1, 1));
        assert_eq!((c.cache_hits, c.cache_misses), (2, 1));
        assert!((c.cache_hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.audit_violations, 2);
        let json = c.to_json();
        assert!(json.contains("\"cache_hits\":2"));
        assert!(json.contains("\"audit_violations\":2"));
        reset_stats();
        assert_eq!(counters(), ServiceCounters::default());
        assert_eq!(counters().cache_hit_rate(), 0.0);
    }

    #[test]
    fn reset_stats_clears_metrics_registry() {
        let _g = test_guard();
        lf_metrics::global()
            .counter("lf_batch_reset_probe_total", "probe")
            .inc();
        assert!(!lf_metrics::global().snapshot().families.is_empty());
        reset_stats();
        assert!(
            !lf_metrics::global()
                .snapshot()
                .families
                .iter()
                .any(|f| f.name == "lf_batch_reset_probe_total"),
            "reset_stats must clear the lf-metrics registry"
        );
    }
}
