//! Per-job lifecycle timelines: who waited how long, why the batch
//! closed, and how much modeled kernel time each pipeline stage charged
//! to the job.
//!
//! A fused batch runs the pipeline **once** over the disjoint union of K
//! graphs, so per-stage device time is a shared cost. The attribution
//! rule splits each stage's modeled nanoseconds across the batch members
//! by **prepared-nnz share**, using integer arithmetic with a
//! largest-remainder rounding pass so the per-job slices sum *exactly*
//! to the stage total — no nanosecond is created or lost, and the split
//! is deterministic (ties broken by batch position). Solo runs are the
//! K = 1 case and receive the whole stage.
//!
//! Timelines carry only identity and modeled/scheduling time — never
//! wall-clock readings — so a `ModelClock`-driven run produces
//! bit-identical timeline JSON on every execution.

use lf_core::PipelineTimings;
use lf_trace::json::escape;
use lf_trace::TraceContext;

/// One pipeline stage's share of modeled device time for one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSlice {
    /// Stage name (matches [`PipelineTimings::phases`] order: `factor`,
    /// `identify_cycles`, `identify_paths`, `permutation`, `extraction`).
    pub stage: &'static str,
    /// Modeled device nanoseconds attributed to this job for the stage.
    pub model_ns: u64,
}

/// The assembled lifecycle timeline of one job: submit → queue wait →
/// batch close → per-stage modeled kernel time → outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct JobTimeline {
    /// The job's correlation identity (trace id, ingress job id, tenant).
    pub ctx: TraceContext,
    /// Nanoseconds between submission and batch execution, measured on
    /// the scheduling clock (deterministic under `ModelClock`).
    pub queue_wait_ns: u64,
    /// Why the job's batch closed (`count`, `nnz`, `deadline`, `drain`).
    pub close_reason: &'static str,
    /// Sequence number of the batch that executed the job.
    pub batch: u64,
    /// How many jobs the batch held when it was formed.
    pub batch_jobs: usize,
    /// Whether the prepared graph came from the LRU cache.
    pub cache_hit: bool,
    /// nnz of this job's prepared graph (0 if preparation failed).
    pub nnz: usize,
    /// nnz of the fused graph the job ran inside (0 if it never fused).
    pub batch_nnz: usize,
    /// Per-stage modeled time attributed to this job (empty when the job
    /// failed before reaching the device).
    pub stages: Vec<StageSlice>,
}

impl JobTimeline {
    /// Total modeled device nanoseconds attributed to this job.
    pub fn total_model_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.model_ns).sum()
    }

    /// End-to-end modeled latency: queue wait plus attributed device
    /// time. Both terms are deterministic, so this is too.
    pub fn latency_ns(&self) -> u64 {
        self.queue_wait_ns.saturating_add(self.total_model_ns())
    }

    /// Serialize the timeline as a JSON object (`trace_id` as hex so the
    /// full 64 bits survive JSON's f64 number model).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| format!("{{\"stage\":\"{}\",\"model_ns\":{}}}", s.stage, s.model_ns))
            .collect();
        format!(
            concat!(
                "{{\"trace_id\":\"{}\",\"job\":{},\"tenant\":\"{}\",",
                "\"queue_wait_ns\":{},\"close_reason\":\"{}\",\"batch\":{},",
                "\"batch_jobs\":{},\"cache_hit\":{},\"nnz\":{},\"batch_nnz\":{},",
                "\"stages\":[{}],\"total_model_ns\":{},\"latency_ns\":{}}}"
            ),
            self.ctx.trace_hex(),
            self.ctx.job_id,
            escape(&self.ctx.tenant),
            self.queue_wait_ns,
            self.close_reason,
            self.batch,
            self.batch_jobs,
            self.cache_hit,
            self.nnz,
            self.batch_nnz,
            stages.join(","),
            self.total_model_ns(),
            self.latency_ns(),
        )
    }
}

/// Convert modeled seconds to integer nanoseconds (round-to-nearest).
pub fn model_ns(seconds: f64) -> u64 {
    if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e9).round() as u64
    } else {
        0
    }
}

/// Split `total_ns` across jobs proportionally to `shares`, exactly:
/// the returned slices always sum to `total_ns`. Uses the largest-
/// remainder method over u128 intermediates; ties break toward the
/// earlier batch position, so the split is deterministic. An all-zero
/// share vector (every member failed preparation — cannot happen for a
/// fused batch, but the function is total) splits evenly.
pub fn split_model_ns(total_ns: u64, shares: &[usize]) -> Vec<u64> {
    if shares.is_empty() {
        return Vec::new();
    }
    let even = vec![1usize; shares.len()];
    let shares: &[usize] = if shares.iter().all(|&s| s == 0) {
        &even
    } else {
        shares
    };
    let denom: u128 = shares.iter().map(|&s| s as u128).sum();
    let total = total_ns as u128;
    let mut out: Vec<u64> = Vec::with_capacity(shares.len());
    let mut rems: Vec<(u128, usize)> = Vec::with_capacity(shares.len());
    let mut assigned: u128 = 0;
    for (i, &s) in shares.iter().enumerate() {
        let num = total * s as u128;
        out.push((num / denom) as u64);
        assigned += num / denom;
        rems.push((num % denom, i));
    }
    // Hand the leftover nanoseconds to the largest remainders, earliest
    // batch position first on ties.
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = (total - assigned) as usize;
    for &(_, i) in &rems {
        if leftover == 0 {
            break;
        }
        out[i] += 1;
        leftover -= 1;
    }
    out
}

/// Attribute a fused run's per-stage modeled time to its K batch members
/// by prepared-nnz share. Returns one stage vector per job, in batch
/// order; for every stage, the K slices sum exactly to that stage's
/// modeled total (in rounded nanoseconds).
pub fn attribute_stages(timings: &PipelineTimings, nnzs: &[usize]) -> Vec<Vec<StageSlice>> {
    let mut per_job: Vec<Vec<StageSlice>> = vec![Vec::new(); nnzs.len()];
    for (stage, stats) in timings.phases() {
        let slices = split_model_ns(model_ns(stats.model_time_s), nnzs);
        for (job, ns) in slices.into_iter().enumerate() {
            per_job[job].push(StageSlice {
                stage,
                model_ns: ns,
            });
        }
    }
    per_job
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exact_and_proportional() {
        let shares = [300usize, 100, 600];
        let got = split_model_ns(1_000_003, &shares);
        assert_eq!(got.iter().sum::<u64>(), 1_000_003);
        // Proportionality within one nanosecond of the ideal share.
        for (g, s) in got.iter().zip(&shares) {
            let ideal = 1_000_003.0 * (*s as f64) / 1000.0;
            assert!((*g as f64 - ideal).abs() <= 1.0, "{g} vs {ideal}");
        }
    }

    #[test]
    fn split_handles_degenerate_shares() {
        assert_eq!(split_model_ns(100, &[]), Vec::<u64>::new());
        let even = split_model_ns(10, &[0, 0, 0]);
        assert_eq!(even.iter().sum::<u64>(), 10);
        assert_eq!(even, vec![4, 3, 3], "even split, earliest gets leftovers");
        assert_eq!(split_model_ns(0, &[5, 7]), vec![0, 0]);
        assert_eq!(split_model_ns(7, &[1]), vec![7]);
    }

    #[test]
    fn split_ties_break_by_batch_position() {
        // Equal shares, 2 leftover ns: positions 0 and 1 get them.
        assert_eq!(split_model_ns(6, &[1, 1, 1, 1]), vec![2, 2, 1, 1]);
    }

    #[test]
    fn timeline_json_is_well_formed_and_sums() {
        let t = JobTimeline {
            ctx: TraceContext::new(0xabcd, 9, "acme"),
            queue_wait_ns: 120,
            close_reason: "count",
            batch: 3,
            batch_jobs: 2,
            cache_hit: true,
            nnz: 40,
            batch_nnz: 100,
            stages: vec![
                StageSlice { stage: "factor", model_ns: 10 },
                StageSlice { stage: "extraction", model_ns: 5 },
            ],
        };
        assert_eq!(t.total_model_ns(), 15);
        assert_eq!(t.latency_ns(), 135);
        let j = t.to_json();
        lf_trace::json::validate(&j).unwrap_or_else(|e| panic!("{j}: {e}"));
        assert!(j.contains("\"trace_id\":\"000000000000abcd\""), "{j}");
        assert!(j.contains("\"close_reason\":\"count\""), "{j}");
        assert!(j.contains("\"total_model_ns\":15"), "{j}");
        assert!(j.contains("\"latency_ns\":135"), "{j}");
    }

    #[test]
    fn model_ns_clamps_non_finite() {
        assert_eq!(model_ns(f64::NAN), 0);
        assert_eq!(model_ns(-1.0), 0);
        assert_eq!(model_ns(1.5e-9), 2);
    }
}
