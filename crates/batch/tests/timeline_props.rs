//! Property tests: per-job lifecycle timelines reconcile with the
//! device's modeled-time totals — solo jobs own the whole cost, fused
//! batches split it by nnz share with no nanosecond created or lost.

use lf_batch::scheduler::{BatchConfig, ExtractionService};
use lf_batch::timeline::{model_ns, split_model_ns};
use lf_kernel::Device;
use lf_sparse::random::random_symmetric;
use lf_trace::TraceContext;
use proptest::prelude::*;
use std::time::Instant;

const TENANTS: [&str; 4] = ["acme", "globex", "initech", "umbrella"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The largest-remainder split is exact for any total and shares:
    /// slices always sum back to the input, whatever the proportions.
    #[test]
    fn split_is_exact_for_any_shares(
        total in 0u64..1u64 << 40,
        shares in proptest::collection::vec(0usize..10_000, 1..12),
    ) {
        let got = split_model_ns(total, &shares);
        prop_assert_eq!(got.len(), shares.len());
        prop_assert_eq!(got.iter().sum::<u64>(), total);
    }

    /// A solo job's timeline owns the device's whole modeled cost: the
    /// per-stage slices sum to the `DeviceStats` total within per-stage
    /// rounding (5 stages × 0.5 ns, plus the total's own rounding).
    #[test]
    fn solo_timeline_matches_device_stats(n in 20usize..40, seed in 0u64..1000) {
        let dev = Device::default();
        let mut s = ExtractionService::new(BatchConfig::default()).unwrap();
        let now = Instant::now();
        s.submit("solo", random_symmetric(n, 3.0, 0.1, 1.0, seed), now).unwrap();
        let (out, stats) = dev.scoped(|| s.drain(&dev));
        prop_assert_eq!(out.len(), 1);
        let got = out[0].timeline.total_model_ns() as i64;
        let want = model_ns(stats.model_time_s) as i64;
        prop_assert!((got - want).abs() <= 8, "{got} vs {want}");
    }

    /// Fused batches over random graphs and tenants: every member keeps
    /// its own correlation identity, and the nnz-share slices across the
    /// batch sum back to the device's modeled total.
    #[test]
    fn fused_timelines_reconcile_with_device_stats(
        sizes in proptest::collection::vec(20usize..45, 2..6),
        seed in 0u64..500,
    ) {
        let dev = Device::default();
        let mut s = ExtractionService::new(BatchConfig::default()).unwrap();
        let now = Instant::now();
        for (i, n) in sizes.iter().enumerate() {
            let tenant = TENANTS[i % TENANTS.len()];
            let ctx = TraceContext::minted(1000 + i as u64, tenant);
            s.submit_traced(
                format!("g{i}"),
                random_symmetric(*n, 3.0, 0.1, 1.0, seed * 31 + i as u64),
                now,
                ctx,
            )
            .unwrap();
        }
        let (out, stats) = dev.scoped(|| s.drain(&dev));
        prop_assert_eq!(out.len(), sizes.len());
        for (i, o) in out.iter().enumerate() {
            let tenant = TENANTS[i % TENANTS.len()];
            prop_assert_eq!(o.ctx.tenant.as_str(), tenant);
            prop_assert_eq!(o.ctx.trace_id, TraceContext::mint(1000 + i as u64, tenant));
            prop_assert_eq!(&o.timeline.ctx, &o.ctx);
            prop_assert!(o.timeline.nnz <= o.timeline.batch_nnz);
            prop_assert!(o.timeline.latency_ns() >= o.timeline.total_model_ns());
        }
        let got: i64 = out.iter().map(|o| o.timeline.total_model_ns() as i64).sum();
        let want = model_ns(stats.model_time_s) as i64;
        // Each batch rounds five per-stage totals to integer ns before
        // splitting (the split itself is exact); allow that slack.
        prop_assert!((got - want).abs() <= 64, "{got} vs {want}");
    }
}
