#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, clippy with warnings denied.
#
#   scripts/tier1.sh [--offline]
#
# With --offline (or when crates.io is unreachable and OFFLINE=1 is set),
# every cargo invocation is routed through scripts/offline_check.sh, which
# overlays the vendored dependency stubs in a scratch copy of the tree.
set -euo pipefail

cd "$(dirname "$0")/.."

run() {
    if [ "${OFFLINE:-0}" = "1" ]; then
        scripts/offline_check.sh "$@"
    else
        cargo "$@"
    fi
}

if [ "${1:-}" = "--offline" ]; then
    export OFFLINE=1
    shift
fi

# --workspace matters: the root manifest is itself a package that does not
# depend on lf-bench, so a bare `cargo build` would skip the bench crate.
run build --release --workspace
run test --workspace -q
run clippy --workspace --all-targets -- -D warnings
