#!/usr/bin/env bash
# Performance-regression gate: re-measure the deterministic model metrics
# (bandwidth-model time, traffic, launch counts — never wall clock) and
# compare them against the committed baseline.
#
#   scripts/perf_gate.sh             compare against results/BENCH_gate.json
#   scripts/perf_gate.sh --update    regenerate the committed baseline
#
# Environment:
#   REPRO_BIN            pre-built repro binary (skips the cargo build);
#                        CI points this at the offline-overlay build so the
#                        run matches the flavour the baseline was made with
#   PERF_GATE_TOLERANCE  relative tolerance per metric (default 0.05)
#   PERF_GATE_INJECT     synthetic model-time slowdown multiplier — used by
#                        CI's negative test to prove the gate trips
#
# Exits nonzero on any regression past tolerance or a missing metric.
set -euo pipefail

cd "$(dirname "$0")/.."

baseline="results/BENCH_gate.json"
tolerance="${PERF_GATE_TOLERANCE:-0.05}"
inject="${PERF_GATE_INJECT:-1.0}"

if [ -n "${REPRO_BIN:-}" ]; then
    repro="$REPRO_BIN"
else
    cargo build --release -p lf-bench --bin repro
    repro="target/release/repro"
fi

if [ "${1:-}" = "--update" ]; then
    "$repro" --out results gate
    echo "perf gate baseline updated: $baseline"
    exit 0
fi

if [ ! -f "$baseline" ]; then
    echo "error: no baseline at $baseline (run scripts/perf_gate.sh --update" \
         "with the same build flavour as CI)" >&2
    exit 1
fi

"$repro" --out /tmp/lf-perf-gate gate \
    --compare "$baseline" --tolerance "$tolerance" --inject "$inject"
