#!/usr/bin/env bash
# Offline build-and-test harness for containers without crates.io access.
#
# The workspace's external dependencies (rayon, rand, parking_lot, proptest,
# criterion) cannot be downloaded in an offline container, so this script
# copies the workspace to a scratch directory, patches those dependencies
# with the sequential API-compatible stubs in vendor/stubs/, and runs the
# tier-1 pipeline there with a clean CARGO_HOME (bypassing any registry
# source replacement in ~/.cargo/config.toml).
#
#   scripts/offline_check.sh [cargo-subcommand args...]
#
# Default action: cargo build --release && cargo test -q.
# Examples:
#   scripts/offline_check.sh check --all-targets
#   scripts/offline_check.sh clippy --all-targets -- -D warnings
#
# Caveat: the stubs run everything sequentially and rand's stub draws
# different (but deterministic) streams than the real crate, so tests that
# depend on exact random values may behave differently than under the real
# dependencies. The shipped Cargo.toml is untouched; this scratch overlay is
# the only place the stubs are wired in.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
scratch="${OFFLINE_CHECK_DIR:-/tmp/lf-offline-check}"
mkdir -p "$scratch"

rm -rf "$scratch/src"
mkdir -p "$scratch/src"
(cd "$repo" && tar cf - --exclude=.git --exclude=target --exclude=results .) \
    | (cd "$scratch/src" && tar xf -)

cat >> "$scratch/src/Cargo.toml" <<'EOF'

# --- appended by scripts/offline_check.sh (not part of the shipped manifest) ---
[patch.crates-io]
rayon = { path = "vendor/stubs/rayon" }
rand = { path = "vendor/stubs/rand" }
parking_lot = { path = "vendor/stubs/parking_lot" }
proptest = { path = "vendor/stubs/proptest" }
criterion = { path = "vendor/stubs/criterion" }
EOF

export CARGO_HOME="$scratch/cargo-home"
export CARGO_TARGET_DIR="$scratch/target"
# The env var (unlike the --offline flag) survives into nested cargo
# invocations, e.g. the one cargo-clippy spawns internally.
export CARGO_NET_OFFLINE=true
mkdir -p "$CARGO_HOME"

cd "$scratch/src"
if [ "$#" -gt 0 ]; then
    cargo --offline "$@"
else
    cargo --offline build --release
    cargo --offline test -q
fi
