//! Frontier-compacted proposition must be indistinguishable from the dense
//! mode: bit-identical `Factor`s, iteration counts and maximality flags,
//! for both SpMV engines, on random graphs including isolated vertices and
//! duplicate edge weights (the tie-heavy case where any ordering slip in
//! the Top-K accumulator would surface).

use linear_forest::prelude::*;
use linear_forest::sparse::Coo;
use proptest::prelude::*;

/// Random undirected weighted graph with deliberate degenerate structure:
/// vertex count can exceed every endpoint (isolated vertices), and weights
/// are quantized to one decimal (many exact duplicates).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..70).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1u32..20),
            0..(n * 3),
        )
        .prop_map(|es| {
            es.into_iter()
                .map(|(u, v, w)| (u, v, w as f64 * 0.1))
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Csr<f64> {
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::new();
    for &(u, v, w) in edges {
        if u != v && seen.insert((u.min(v), u.max(v))) {
            coo.push_sym(u, v, w);
        }
    }
    Csr::from_coo(coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frontier_factor_bit_identical_to_dense(
        (n, edges) in graph_strategy(),
        nb in 1usize..=4,
        iters in 1usize..30,
    ) {
        let a = build(n, &edges);
        let dev = Device::default();
        for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
            let cfg = FactorConfig::paper_default(nb)
                .with_max_iters(iters)
                .with_engine(engine);
            let dense = parallel_factor(&dev, &a, &cfg);
            let front = parallel_factor(&dev, &a, &cfg.with_frontier(true));
            prop_assert_eq!(
                &dense.factor, &front.factor,
                "engine {:?}: factors diverged", engine
            );
            prop_assert_eq!(dense.iterations, front.iterations);
            prop_assert_eq!(dense.maximal, front.maximal);
        }
    }

    #[test]
    fn frontier_modes_agree_across_engines(
        (n, edges) in graph_strategy(),
        nb in 1usize..=3,
    ) {
        // All four (engine × frontier) combinations must land on one factor.
        let a = build(n, &edges);
        let dev = Device::default();
        let base = FactorConfig::paper_default(nb).with_max_iters(25);
        let reference = parallel_factor(&dev, &a, &base);
        for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
            for frontier in [false, true] {
                let cfg = base.with_engine(engine).with_frontier(frontier);
                let out = parallel_factor(&dev, &a, &cfg);
                prop_assert_eq!(
                    &reference.factor, &out.factor,
                    "engine {:?} frontier {}", engine, frontier
                );
                prop_assert!(out.factor.validate(&a).is_ok());
            }
        }
    }
}

#[test]
fn frontier_on_collection_matrices() {
    // Full-size collection models, both engines, frontier vs dense.
    let dev = Device::default();
    for m in [Collection::Aniso1, Collection::Ecology1, Collection::Transport] {
        let a = prepare_undirected(&m.generate(1100));
        for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
            let cfg = FactorConfig::paper_default(2).with_engine(engine);
            let dense = parallel_factor(&dev, &a, &cfg);
            let front = parallel_factor(&dev, &a, &cfg.with_frontier(true));
            assert_eq!(dense.factor, front.factor, "{} {engine:?}", m.name());
        }
    }
}

#[test]
fn frontier_all_isolated_vertices() {
    // Edgeless graph: every vertex is frontier forever, maximality on the
    // first uncharged iteration, empty factor.
    let dev = Device::default();
    let a = Csr::<f64>::from_coo(Coo::new(40, 40));
    let cfg = FactorConfig::paper_default(2).with_frontier(true);
    let out = parallel_factor(&dev, &a, &cfg);
    assert!(out.maximal);
    assert_eq!(out.iterations, 1);
    assert_eq!(out.factor.edges().len(), 0);
}
