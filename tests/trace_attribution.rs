//! Telemetry attribution invariants across the stack:
//!
//! * a generalized SpMV over a [`CsrRowView`] frontier subset must report
//!   strictly less read traffic than the same operation over the full
//!   matrix (the point of frontier compaction);
//! * the summary exporter's rollup invariants — `total = direct + Σ child
//!   totals` per span and `Σ direct + untraced = grand totals` — hold on
//!   random span trees, not just the shapes the pipeline happens to emit;
//! * recording a full `extract_linear_forest` run yields a valid Chrome
//!   trace with per-iteration spans nested under the factor phase, and a
//!   summary whose byte totals equal the device's own aggregate stats.

use linear_forest::prelude::*;
use linear_forest::sparse::{gespmv, subset_row_ptr, AxpyOps, CsrRowView, SpmvEngine};
use linear_forest::trace::{
    chrome_trace, json, summary, LaunchEvent, RecordingSink, TraceSink,
};
use proptest::prelude::*;
use std::sync::Arc;

fn spmv_read_bytes<M: linear_forest::sparse::GeSpmvMatrix<f64>>(
    dev: &Device,
    engine: SpmvEngine,
    a: &M,
    x: &[f64],
    d: &[f64],
) -> u64 {
    let mut out = vec![0.0f64; a.num_rows()];
    let (_, stats) = dev.scoped(|| gespmv(dev, "traffic_probe", engine, a, &AxpyOps { x, d }, &mut out));
    stats.traffic.read
}

#[test]
fn row_view_reads_strictly_less_than_full_matrix() {
    let dev = Device::default();
    let a = prepare_undirected(&Collection::Ecology1.generate(4000));
    let x: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.3).cos()).collect();
    let d = vec![1.0f64; a.nrows()];

    // Half the rows form the frontier subset.
    let rows: Vec<u32> = (0..a.nrows() as u32).step_by(2).collect();
    let mut vp = Vec::new();
    subset_row_ptr(&a, &rows, &mut vp);
    let view = CsrRowView::new(&a, &rows, &vp);

    for engine in [SpmvEngine::RowParallel, SpmvEngine::SrCsr] {
        let full = spmv_read_bytes(&dev, engine, &a, &x, &d);
        let sub = spmv_read_bytes(&dev, engine, &view, &x, &d);
        assert!(
            sub < full,
            "{engine:?}: row-view read {sub} B not below full-matrix {full} B"
        );
    }
}

/// Random span forest, integer-encoded: span `i > 0` takes
/// `parent_seeds[i] % (i + 1)` as its parent (the value `i` meaning
/// "root"), and each launch attaches to `seed % (nspans + 1)` (the value
/// `nspans` meaning "untraced").
fn span_tree_strategy() -> impl Strategy<Value = (usize, Vec<u64>, Vec<(u64, u64, u64)>)> {
    (1usize..12).prop_flat_map(|nspans| {
        (
            Just(nspans),
            proptest::collection::vec(0u64..1_000_000, nspans..nspans + 1),
            proptest::collection::vec((0u64..1_000_000, 0u64..10_000, 0u64..10_000), 0..30),
        )
    })
}

fn decode_parent(i: usize, seed: u64) -> Option<u64> {
    let r = seed % (i as u64 + 1);
    (r < i as u64).then_some(r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn summary_rollup_invariants_on_random_span_trees(
        (nspans, parent_seeds, launches) in span_tree_strategy(),
    ) {
        let sink = RecordingSink::new();
        for (i, &seed) in parent_seeds.iter().enumerate() {
            sink.begin_span(i as u64, decode_parent(i, seed), &format!("s{i}"), i as f64);
        }
        for (j, &(attach, read, written)) in launches.iter().enumerate() {
            let span = attach % (nspans as u64 + 1);
            sink.launch(&LaunchEvent {
                span: (span < nspans as u64).then_some(span),
                name: format!("k{j}"),
                read,
                written,
                model_s: read as f64 * 1e-9,
                wall_s: written as f64 * 1e-9,
                start_s: j as f64,
            });
        }
        for i in (0..nspans).rev() {
            sink.end_span(i as u64, 100.0 + i as f64);
        }
        let data = sink.snapshot();
        let sum = summary(&data);

        // Partition: every launch counts once, toward exactly one direct
        // bucket.
        let direct_read: u64 = sum.phases.iter().map(|p| p.direct.read).sum();
        let direct_written: u64 = sum.phases.iter().map(|p| p.direct.written).sum();
        let direct_launches: u64 = sum.phases.iter().map(|p| p.direct.launches).sum();
        prop_assert_eq!(direct_read + sum.untraced.read, sum.totals.read);
        prop_assert_eq!(direct_written + sum.untraced.written, sum.totals.written);
        prop_assert_eq!(direct_launches + sum.untraced.launches, sum.totals.launches);
        prop_assert_eq!(sum.totals.launches as usize, launches.len());

        // Rollup: every span's total is its direct plus its direct
        // children's totals (and hence, transitively, all descendants).
        for p in &sum.phases {
            let children_read: u64 = sum
                .phases
                .iter()
                .filter(|c| data.span(c.id).unwrap().parent == Some(p.id))
                .map(|c| c.total.read)
                .sum();
            let children_launches: u64 = sum
                .phases
                .iter()
                .filter(|c| data.span(c.id).unwrap().parent == Some(p.id))
                .map(|c| c.total.launches)
                .sum();
            prop_assert_eq!(p.total.read, p.direct.read + children_read, "span {}", &p.path);
            prop_assert_eq!(p.total.launches, p.direct.launches + children_launches);
        }

        // Both exporters stay valid JSON on arbitrary tree shapes.
        json::validate(&sum.to_json()).unwrap();
        json::validate(&chrome_trace(&data)).unwrap();
    }
}

#[test]
fn traced_pipeline_matches_device_aggregate() {
    let dev = Device::default();
    let sink = Arc::new(RecordingSink::new());
    dev.tracer().install(sink.clone());

    let a = prepare_undirected(&Collection::Aniso1.generate(3000));
    let (forest, _) = extract_linear_forest(&dev, &a, &FactorConfig::paper_default(2)).unwrap();
    assert!(forest.num_paths() > 0);

    let data = sink.snapshot();
    let sum = summary(&data);
    let stats = dev.stats();

    // Acceptance criterion (b): the summary's grand totals equal the
    // device's own aggregate accounting for the run.
    assert_eq!(sum.totals.launches, stats.launches);
    assert_eq!(sum.totals.read, stats.traffic.read);
    assert_eq!(sum.totals.written, stats.traffic.written);
    assert!((sum.totals.model_s - stats.model_time_s).abs() <= 1e-9 * stats.launches as f64);

    // Acceptance criterion (a): factor iterations nest under the factor
    // phase, which nests under the forest root.
    let iter0 = sum
        .phases
        .iter()
        .find(|p| p.name == "iter_0")
        .expect("per-iteration span");
    assert_eq!(iter0.path, "forest/factor/iter_0");
    assert_eq!(iter0.depth, 2);
    assert!(iter0.direct.launches > 0, "iteration spans own the kernel launches");
    for stage in ["factor", "identify_cycles", "identify_paths", "permutation"] {
        let p = sum
            .phases
            .iter()
            .find(|p| p.name == stage)
            .unwrap_or_else(|| panic!("missing {stage} span"));
        assert_eq!(p.path, format!("forest/{stage}"));
    }

    // Per-iteration factor metrics made it through.
    let factor = sum.phases.iter().find(|p| p.name == "iter_0").unwrap();
    let keys: Vec<&str> = factor.metrics.iter().map(|(k, _)| k.as_str()).collect();
    for key in ["frontier", "proposed_slots", "confirmed_slots", "edges_confirmed", "covered_weight"] {
        assert!(keys.contains(&key), "iter_0 missing metric {key}, has {keys:?}");
    }

    // The Chrome export of the same run is valid JSON and mentions the
    // nested path.
    let ct = chrome_trace(&data);
    json::validate(&ct).unwrap();
    assert!(ct.contains("\"path\":\"forest/factor/iter_0\""));
}

#[test]
fn traced_solver_records_residual_series() {
    let dev = Device::default();
    let sink = Arc::new(RecordingSink::new());
    dev.tracer().install(sink.clone());

    let a = Collection::Aniso1.generate(900);
    let (b, xt) = manufactured_problem(&dev, &a);
    let precond = JacobiPrecond::new(&a);
    let (_, st) = bicgstab(&dev, &a, &b, &precond, &SolveOpts::default(), Some(&xt));

    let sum = summary(&sink.snapshot());
    let solve = sum
        .phases
        .iter()
        .find(|p| p.name == "bicgstab")
        .expect("solver span");
    let res = solve
        .metrics
        .iter()
        .find(|(k, _)| k == "rel_residual")
        .map(|(_, v)| v.clone())
        .expect("residual series");
    assert_eq!(res, st.rel_residual, "traced series mirrors SolveStats");
}
