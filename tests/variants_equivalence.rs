//! Cross-validation of the algorithm variants on real collection
//! pipelines: the fused merged scan, the work-efficient list ranking, and
//! the top-n strategies must all agree with the production two-pass path
//! on every matrix class.

use linear_forest::core::alternatives::{
    top_n_fused, top_n_repeated_reduce, top_n_segmented_sort,
};
use linear_forest::prelude::*;

#[test]
fn merged_scan_matches_two_pass_on_collection() {
    let dev = Device::default();
    for m in [
        Collection::Aniso2,
        Collection::Ecology1,
        Collection::Stocf1465,
        Collection::G3Circuit,
        Collection::Transport,
    ] {
        let a = prepare_undirected(&m.generate(1200));
        let factor = parallel_factor(&dev, &a, &FactorConfig::paper_default(2)).factor;

        let mut f_two = factor.clone();
        break_cycles(&dev, &mut f_two);
        let p_two = identify_paths(&dev, &f_two).expect("acyclic");

        let mut f_fused = factor.clone();
        let (_, p_fused) = break_cycles_and_identify_paths(&dev, &mut f_fused);

        assert_eq!(f_two, f_fused, "{}: factors differ", m.name());
        assert_eq!(p_two, p_fused, "{}: paths differ", m.name());
    }
}

#[test]
fn list_ranking_matches_scan_on_collection() {
    let dev = Device::default();
    for m in [Collection::Aniso1, Collection::Atmosmodm, Collection::Thermal2] {
        let a = prepare_undirected(&m.generate(1500));
        let mut factor = parallel_factor(&dev, &a, &FactorConfig::paper_default(2)).factor;
        break_cycles(&dev, &mut factor);
        let scan = identify_paths(&dev, &factor).expect("acyclic");
        let rank = identify_paths_workefficient(&dev, &factor).expect("acyclic");
        assert_eq!(scan, rank, "{}", m.name());
    }
}

#[test]
fn topn_strategies_agree_on_collection() {
    let dev = Device::default();
    for m in [Collection::Curlcurl3, Collection::AfShell8] {
        let a = prepare_undirected(&m.generate(700));
        let fused = top_n_fused::<f64, 2>(&dev, &a);
        assert_eq!(fused, top_n_segmented_sort::<f64, 2>(&dev, &a), "{}", m.name());
        assert_eq!(fused, top_n_repeated_reduce::<f64, 2>(&dev, &a), "{}", m.name());
        // the fused selection equals the factor proposition's first round
        // on an empty state: heaviest candidates per vertex
        for (v, fv) in fused.iter().enumerate() {
            let best = a
                .row(v)
                .filter(|&(c, _)| c as usize != v)
                .map(|(_, w)| w)
                .fold(0.0f64, f64::max);
            if let Some((w, _)) = fv.iter().next() {
                assert_eq!(w, best, "{} row {v}", m.name());
            }
        }
    }
}

#[test]
fn pipeline_deterministic_across_runs() {
    // same inputs → bit-identical outputs (required for reproducible
    // experiments and implied by the device model)
    let dev = Device::default();
    let a = prepare_undirected(&Collection::Transport.generate(1000));
    let cfg = FactorConfig::paper_default(2);
    let (f1, _) = extract_linear_forest(&dev, &a, &cfg).unwrap();
    let (f2, _) = extract_linear_forest(&dev, &a, &cfg).unwrap();
    assert_eq!(f1.factor, f2.factor);
    assert_eq!(f1.paths, f2.paths);
    assert_eq!(f1.perm, f2.perm);
}
