//! Solver-level integration: preconditioner correctness as linear
//! operators, BiCGStab/PCG agreement, and MatrixMarket round trips of
//! solver inputs.

use linear_forest::prelude::*;
use linear_forest::sparse::mm;

#[test]
fn all_preconditioners_are_consistent_linear_operators() {
    let dev = Device::default();
    let a = Collection::Curlcurl3.generate(343);
    let n = a.nrows();
    let cfg = FactorConfig::paper_default(2);
    let preconds: Vec<Box<dyn Preconditioner<f64>>> = vec![
        Box::new(IdentityPrecond),
        Box::new(JacobiPrecond::new(&a)),
        Box::new(TriScalPrecond::new(&a)),
        Box::new(AlgTriScalPrecond::new(&dev, &a, &cfg)),
        Box::new(AlgTriBlockPrecond::new(&dev, &a, &cfg)),
    ];
    for p in &preconds {
        // linearity: M⁻¹(αx + y) = α M⁻¹x + M⁻¹y
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let alpha = 2.5;
        let mut zx = vec![0.0; n];
        let mut zy = vec![0.0; n];
        let mut zc = vec![0.0; n];
        p.apply(&dev, &x, &mut zx);
        p.apply(&dev, &y, &mut zy);
        let comb: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        p.apply(&dev, &comb, &mut zc);
        for i in 0..n {
            let want = alpha * zx[i] + zy[i];
            assert!(
                (zc[i] - want).abs() < 1e-8 * (1.0 + want.abs()),
                "{}: nonlinear at {i}",
                p.name()
            );
        }
        // determinism
        let mut z2 = vec![0.0; n];
        p.apply(&dev, &x, &mut z2);
        assert_eq!(zx, z2, "{}: nondeterministic", p.name());
    }
}

#[test]
fn bicgstab_and_pcg_agree_on_spd() {
    let dev = Device::default();
    let a = Collection::Thermal2.generate(900);
    let (b, xt) = manufactured_problem(&dev, &a);
    let opts = SolveOpts {
        tol: 1e-10,
        max_iters: 4000,
    };
    let p = JacobiPrecond::new(&a);
    let (x1, s1) = bicgstab(&dev, &a, &b, &p, &opts, Some(&xt));
    let (x2, s2) = pcg(&dev, &a, &b, &p, &opts, Some(&xt));
    assert!(s1.converged && s2.converged);
    for i in 0..a.nrows() {
        assert!((x1[i] - x2[i]).abs() < 1e-6, "solutions differ at {i}");
        assert!((x1[i] - xt[i]).abs() < 1e-6);
    }
}

#[test]
fn solve_after_mtx_roundtrip() {
    let dev = Device::default();
    let a = Collection::Aniso2.generate(400);
    let mut buf = Vec::new();
    mm::write_csr(&mut buf, &a).unwrap();
    let a2: Csr<f64> = Csr::from_coo(mm::read_coo(buf.as_slice()).unwrap());
    assert_eq!(a, a2);
    let (b, xt) = manufactured_problem(&dev, &a2);
    let cfg = FactorConfig::paper_default(2);
    let p = AlgTriScalPrecond::new(&dev, &a2, &cfg);
    let (_, st) = bicgstab(&dev, &a2, &b, &p, &SolveOpts::default(), Some(&xt));
    assert!(st.converged);
}

#[test]
fn pcr_preconditioner_path_equivalent_to_thomas() {
    // pcr_solve and the Thomas factorization must produce the same
    // preconditioner action (the GPU-vs-CPU solve paths of the paper).
    let dev = Device::default();
    let a = Collection::Atmosmodm.generate(1000);
    let cfg = FactorConfig::paper_default(2);
    let (tri, _, _) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
    let thomas = ThomasFactorization::new(&tri);
    let r: Vec<f64> = (0..tri.len()).map(|i| (0.3 * i as f64).sin()).collect();
    let x1 = thomas.solve(&r);
    let x2 = pcr_solve(&dev, &tri, &r);
    for i in 0..tri.len() {
        assert!(
            (x1[i] - x2[i]).abs() < 1e-6 * (1.0 + x1[i].abs()),
            "PCR vs Thomas at {i}: {} vs {}",
            x2[i],
            x1[i]
        );
    }
}

#[test]
fn breakdown_reported_not_panicked() {
    // a singular system should surface as non-convergence, never a panic
    let dev = Device::default();
    let mut coo = linear_forest::sparse::Coo::<f64>::new(4, 4);
    coo.push_sym(0, 1, 1.0); // rank-deficient, zero diagonal
    let a = Csr::from_coo(coo);
    let b = vec![1.0, 1.0, 1.0, 1.0];
    let (_, st) = bicgstab(&dev, &a, &b, &IdentityPrecond, &SolveOpts::default(), None);
    assert!(!st.converged);
}
