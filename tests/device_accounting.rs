//! Kernel-launch and traffic accounting across the pipeline: the paper's
//! structural claims — log₂(N) scan launches, Table 2 buffer traffic —
//! are checked on the simulated device.

use linear_forest::prelude::*;

#[test]
fn scan_launch_count_is_log2_n() {
    let dev = Device::default();
    for n in [100usize, 1000, 5000] {
        let a = Collection::Thermal2.generate(n);
        let ap = prepare_undirected(&a);
        dev.reset_stats();
        let (_, timings) = extract_linear_forest(&dev, &ap, &FactorConfig::paper_default(2)).unwrap();
        let steps = a.nrows().max(2).next_power_of_two().trailing_zeros() as u64;
        let cyc = timings.identify_cycles.kernels["identify_cycles"].launches;
        let pth = timings.identify_paths.kernels["identify_paths"].launches;
        assert_eq!(cyc, steps, "identify_cycles launches for N={}", a.nrows());
        assert_eq!(pth, steps, "identify_paths launches for N={}", a.nrows());
    }
}

#[test]
fn proposition_traffic_matches_table2() {
    // Table 2, k = 0: reads = CSR values (nnz) + col indices (nnz) +
    // row ptrs (N+1) + charges (N) + functor extras; writes = proposed
    // edges + weights (nN each, packed in the TopK output).
    let dev = Device::default();
    let a = Collection::Ecology1.generate(2500);
    let ap = prepare_undirected(&a);
    dev.reset_stats();
    let _ = parallel_factor(&dev, &ap, &FactorConfig::config1(2).with_max_iters(1));
    let s = dev.stats();
    let prop = &s.kernels["edge_proposition"];
    assert_eq!(prop.launches, 1);
    let n = ap.nrows();
    let nnz = ap.nnz();
    // writes: N TopK<f64, 2> outputs = N · 2 · (8 + 4 + pad) bytes —
    // at least the paper's 2·N·(value + index)
    assert!(
        prop.traffic.written >= (n * 2 * 12) as u64,
        "proposition writes {} < paper's nN(value+index)",
        prop.traffic.written
    );
    // reads cover at least values + col indices + row ptrs
    assert!(
        prop.traffic.read >= (nnz * 12 + (n + 1) * 8) as u64,
        "proposition reads {} too small",
        prop.traffic.read
    );
}

#[test]
fn pipeline_phase_launch_structure() {
    let dev = Device::default();
    let a = Collection::G3Circuit.generate(2000);
    let (_, _, timings) = {
        let cfg = FactorConfig::paper_default(2);
        tridiagonal_from_matrix(&dev, &a, &cfg).unwrap()
    };
    // factor phase: 5 iterations → 5 propositions + copies/confirms
    let prop = timings.factor.kernels["edge_proposition"].launches;
    assert_eq!(prop, 5, "M = 5 proposition launches");
    assert!(timings.factor.kernels.contains_key("confirm"));
    // extraction: invert permutation + coefficient scatter
    assert!(timings.extraction.kernels.contains_key("extract_coefficients"));
    // permutation phase uses the radix sort
    let radix: u64 = timings
        .permutation
        .kernels
        .iter()
        .filter(|(k, _)| k.starts_with("radix_sort"))
        .map(|(_, v)| v.launches)
        .sum();
    assert!(radix >= 1, "no radix sort launches recorded");
}

#[test]
fn model_time_scales_with_bandwidth() {
    // same work on a device with half the bandwidth takes ~2x model time
    let fast = Device::new(DeviceConfig {
        name: "fast".into(),
        bandwidth_gbps: 600.0,
        launch_overhead_us: 0.0,
        ..DeviceConfig::default()
    });
    let slow = Device::new(DeviceConfig {
        name: "slow".into(),
        bandwidth_gbps: 300.0,
        launch_overhead_us: 0.0,
        ..DeviceConfig::default()
    });
    let a = Collection::Thermal2.generate(2000);
    let ap = prepare_undirected(&a);
    let (_, t_fast) = extract_linear_forest(&fast, &ap, &FactorConfig::paper_default(2)).unwrap();
    let (_, t_slow) = extract_linear_forest(&slow, &ap, &FactorConfig::paper_default(2)).unwrap();
    let ratio = t_slow.total_model_s() / t_fast.total_model_s();
    assert!(
        (ratio - 2.0).abs() < 1e-6,
        "bandwidth halved → model time x{ratio:.3}"
    );
}

#[test]
fn fig6_extraction_is_small_fraction() {
    // Fig. 6: coefficient extraction ≤ ~10 % of total setup model time.
    let dev = Device::default();
    let a = Collection::Atmosmodl.generate(8000);
    let cfg = FactorConfig::paper_default(2);
    let (_, _, t) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
    let frac = t.extraction.model_time_s / t.total_model_s();
    assert!(
        frac < 0.25,
        "extraction fraction {frac:.2} (paper: ≤ 0.10)"
    );
    // factor + scans dominate
    let heavy = (t.factor.model_time_s
        + t.identify_cycles.model_time_s
        + t.identify_paths.model_time_s)
        / t.total_model_s();
    assert!(heavy > 0.6, "factor+scans fraction {heavy:.2}");
}
