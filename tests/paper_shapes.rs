//! Qualitative reproduction checks: the *shapes* of the paper's Tables 4
//! and 5 and Fig. 4 on the collection stand-ins — who needs charging, who
//! covers how much, which preconditioner wins.

use linear_forest::prelude::*;

const SCALE: usize = 2500;

fn coverage_with(m: Collection, cfg: &FactorConfig) -> (f64, usize, bool) {
    let dev = Device::default();
    let a = m.generate(SCALE);
    let ap = prepare_undirected(&a);
    let out = parallel_factor(&dev, &ap, cfg);
    (weight_coverage(&out.factor, &a), out.iterations, out.maximal)
}

#[test]
fn table4_ecology_stalls_without_charging() {
    // Table 4, ECOLOGY rows: c_π(5) = 0.00 for config (1); 0.46 for (2).
    let (c1, _, _) = coverage_with(Collection::Ecology1, &FactorConfig::config1(2));
    let (c2, _, _) = coverage_with(Collection::Ecology1, &FactorConfig::config2(2));
    assert!(c1 < 0.10, "uncharged ECOLOGY c_π(5) = {c1:.3}, paper: 0.00");
    assert!(c2 > 0.35, "charged ECOLOGY c_π(5) = {c2:.3}, paper: 0.46");
    // ... and the uncharged one needs many iterations to become maximal
    let cfg = FactorConfig::config1(2).with_max_iters(4000);
    let (c_max, iters, maximal) = coverage_with(Collection::Ecology1, &cfg);
    assert!(maximal, "should eventually be maximal");
    assert!(
        iters > 25,
        "uncharged maximality took only {iters} iterations; paper: ~N"
    );
    assert!(c_max > 0.40, "maximal coverage {c_max:.3}, paper: 0.50");
}

#[test]
fn table4_aniso_works_without_charging() {
    // Table 4, ANISO rows: c_π(5) = 0.67 for all of (1) and (2); config (3)
    // (charging in the first iteration) is worse (0.54–0.57).
    let (c1, _, _) = coverage_with(Collection::Aniso1, &FactorConfig::config1(2));
    let (c2, _, _) = coverage_with(Collection::Aniso1, &FactorConfig::config2(2));
    let (c3, _, _) = coverage_with(Collection::Aniso1, &FactorConfig::config3(2));
    assert!(c1 > 0.60, "ANISO1 config1 {c1:.3}, paper 0.67");
    assert!(c2 > 0.60, "ANISO1 config2 {c2:.3}, paper 0.67");
    assert!(
        c3 < c2 - 0.03,
        "config3 ({c3:.3}) should trail config2 ({c2:.3}) as in the paper"
    );
}

#[test]
fn table5_coverage_orderings() {
    // ATMOSMODM: c_π(5) ≈ 0.95 for n = 2 vs c_id = 0.03.
    let a = Collection::Atmosmodm.generate(SCALE);
    let c_id = identity_coverage(&a);
    let (c2, _, _) = coverage_with(Collection::Atmosmodm, &FactorConfig::config2(2));
    assert!(c_id < 0.10, "ATMOSMODM c_id = {c_id:.3}, paper 0.03");
    assert!(c2 > 0.85, "ATMOSMODM c_π = {c2:.3}, paper 0.95");

    // STOCF-1465: c_π = 1.00 for n ≥ 2.
    let (cs, _, _) = coverage_with(Collection::Stocf1465, &FactorConfig::config2(2));
    assert!(cs > 0.95, "STOCF c_π = {cs:.3}, paper 1.00");

    // ECOLOGY: c_π grows ~linearly with n toward 1.0 at n = 4 (grid degree 4).
    let (e4, _, _) = coverage_with(Collection::Ecology1, &FactorConfig::config2(4));
    assert!(e4 > 0.9, "ECOLOGY n=4 coverage {e4:.3}, paper 1.00");
}

#[test]
fn table5_parallel_close_to_sequential() {
    // PAR vs SEQ columns agree within ~0.05 for these matrices.
    for m in [
        Collection::Aniso2,
        Collection::Atmosmodl,
        Collection::Thermal2,
        Collection::G3Circuit,
    ] {
        let a = m.generate(SCALE);
        let ap = prepare_undirected(&a);
        for n in [1usize, 2] {
            let dev = Device::default();
            let par = parallel_factor(&dev, &ap, &FactorConfig::config2(n));
            let seq = greedy_factor(&ap, n);
            let cp = weight_coverage(&par.factor, &a);
            let cs = weight_coverage(&seq, &a);
            assert!(
                (cp - cs).abs() < 0.08,
                "{} n={n}: PAR {cp:.3} vs SEQ {cs:.3} (paper: ≤ 0.04 apart)",
                m.name()
            );
        }
    }
}

#[test]
fn transport_needs_charging() {
    // Table 4 TRANSPORT: c_π(5) = 0.24 uncharged vs 0.45 charged.
    let (c1, _, _) = coverage_with(Collection::Transport, &FactorConfig::config1(2));
    let (c2, _, _) = coverage_with(Collection::Transport, &FactorConfig::config2(2));
    assert!(
        c2 > c1 + 0.10,
        "charged ({c2:.3}) must clearly beat uncharged ({c1:.3}) on TRANSPORT"
    );
}

#[test]
fn fig4_preconditioner_ranking_on_atmosmodm() {
    // Fig. 4 ATMOSMODM panel: AlgTriScal ≫ TriScal ≈ Jacobi because the
    // forest captures 95 % of the weight vs 3 % on the tridiagonal.
    let dev = Device::default();
    let a = Collection::Atmosmodm.generate(2000);
    let (b, xt) = manufactured_problem(&dev, &a);
    let opts = SolveOpts {
        tol: 1e-10,
        max_iters: 4000,
    };
    let cfg = FactorConfig::paper_default(2);
    let (_, jac) = bicgstab(&dev, &a, &b, &JacobiPrecond::new(&a), &opts, Some(&xt));
    let (_, tri) = bicgstab(&dev, &a, &b, &TriScalPrecond::new(&a), &opts, Some(&xt));
    let alg = AlgTriScalPrecond::new(&dev, &a, &cfg);
    let (_, als) = bicgstab(&dev, &a, &b, &alg, &opts, Some(&xt));
    assert!(als.converged);
    assert!(
        als.iterations * 2 <= jac.iterations,
        "AlgTriScal {} vs Jacobi {}",
        als.iterations,
        jac.iterations
    );
    assert!(
        als.iterations < tri.iterations,
        "AlgTriScal {} vs TriScal {}",
        als.iterations,
        tri.iterations
    );
    // FRE improves alongside the residual
    assert!(als.fre.last().unwrap() < &1e-6);
}

#[test]
fn fig4_block_precond_competitive_on_af_shell() {
    // Fig. 4 AF_SHELL8 panel: AlgTriBlock stabilizes convergence where the
    // scalar preconditioners have low coverage.
    let dev = Device::default();
    let a = Collection::AfShell8.generate(1200);
    let (b, xt) = manufactured_problem(&dev, &a);
    let opts = SolveOpts {
        tol: 1e-9,
        max_iters: 4000,
    };
    let cfg = FactorConfig::paper_default(2);
    let blk = AlgTriBlockPrecond::new(&dev, &a, &cfg);
    let scal = AlgTriScalPrecond::new(&dev, &a, &cfg);
    assert!(
        blk.coverage().unwrap() > scal.coverage().unwrap(),
        "block coverage {:.3} must exceed scalar {:.3} (Table 5: 0.38+ vs 0.23)",
        blk.coverage().unwrap(),
        scal.coverage().unwrap()
    );
    let (_, st_blk) = bicgstab(&dev, &a, &b, &blk, &opts, Some(&xt));
    let (_, st_scal) = bicgstab(&dev, &a, &b, &scal, &opts, Some(&xt));
    assert!(st_blk.converged);
    assert!(
        st_blk.iterations <= st_scal.iterations + 10,
        "block {} should not trail scalar {} by much",
        st_blk.iterations,
        st_scal.iterations
    );
}
