//! End-to-end pipeline over every collection matrix (small scale): factor
//! invariants, forest acyclicity, tridiagonalizing permutation, and
//! coefficient extraction, for all of Table 3.

use linear_forest::core::permute::is_tridiagonalizing;
use linear_forest::prelude::*;

#[test]
fn full_pipeline_on_every_collection_matrix() {
    let dev = Device::default();
    for m in Collection::ALL {
        let a = m.generate(600);
        let ap = prepare_undirected(&a);
        let cfg = FactorConfig::paper_default(2);
        let (forest, _) = extract_linear_forest(&dev, &ap, &cfg).unwrap();

        forest
            .factor
            .validate(&ap)
            .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        // acyclic [0,2]-factor: the sequential cycle finder agrees
        let mut f = forest.factor.clone();
        let rep = break_cycles_sequential(&mut f);
        assert_eq!(rep.cycles, 0, "{}: cycles survived", m.name());
        // positions are consistent with paths
        let seq = identify_paths_sequential(&forest.factor).expect("acyclic");
        assert_eq!(seq, forest.paths, "{}: path info mismatch", m.name());
        // permutation tridiagonalizes the forest adjacency
        assert!(
            is_tridiagonalizing(&forest.factor, &forest.perm),
            "{}: permutation not tridiagonalizing",
            m.name()
        );
    }
}

#[test]
fn extraction_preserves_diagonal_and_forest_weights() {
    let dev = Device::default();
    for m in [Collection::Thermal2, Collection::Transport, Collection::G3Circuit] {
        let a = m.generate(500);
        let cfg = FactorConfig::paper_default(2);
        let (tri, forest, _) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
        let n = a.nrows();
        let inv: Vec<usize> = {
            let mut inv = vec![0usize; n];
            for (new, &old) in forest.perm.iter().enumerate() {
                inv[old as usize] = new;
            }
            inv
        };
        for (i, &pi) in inv.iter().enumerate() {
            assert_eq!(tri.d[pi], a.get(i, i), "{} diag {i}", m.name());
        }
        // each forest edge appears in the extracted system (both directions)
        for (u, v, _) in forest.factor.edges() {
            let (pu, pv) = (inv[u as usize], inv[v as usize]);
            let (lo, hi) = (pu.min(pv), pu.max(pv));
            assert_eq!(hi, lo + 1, "{}: non-adjacent forest edge", m.name());
            assert_eq!(
                tri.du[lo],
                a.get(forest.perm[lo] as usize, forest.perm[hi] as usize),
                "{}: superdiagonal mismatch",
                m.name()
            );
        }
    }
}

#[test]
fn factor_coverage_never_decreases_with_n() {
    let dev = Device::default();
    for m in [Collection::Aniso1, Collection::Curlcurl3, Collection::Ecology1] {
        let a = m.generate(700);
        let ap = prepare_undirected(&a);
        let mut last = 0.0;
        for n in 1..=4 {
            let cfg = FactorConfig::paper_default(n);
            let out = parallel_factor(&dev, &ap, &cfg);
            let c = weight_coverage(&out.factor, &a);
            assert!(
                c + 1e-9 >= last,
                "{}: coverage dropped from {last:.3} to {c:.3} at n={n}",
                m.name()
            );
            last = c;
        }
    }
}

#[test]
fn nonsymmetric_matrices_are_symmetrized_correctly() {
    let dev = Device::default();
    for m in [Collection::Atmosmodd, Collection::MlGeer, Collection::Transport] {
        let a = m.generate(400);
        assert!(!a.is_symmetric(), "{} should be nonsymmetric", m.name());
        let ap = prepare_undirected(&a);
        assert!(ap.is_symmetric(), "{}: A' + A'ᵀ not symmetric", m.name());
        let out = parallel_factor(&dev, &ap, &FactorConfig::paper_default(2));
        out.factor.validate(&ap).unwrap();
        // coverage w.r.t. the original A is well-defined and in (0, 1]
        let c = weight_coverage(&out.factor, &a);
        assert!(c > 0.0 && c <= 1.0, "{}: coverage {c}", m.name());
    }
}

#[test]
fn directed_mode_on_pattern_symmetric_input() {
    // The paper (Sec. 4) notes Algorithm 2 also runs directly on directed
    // input: propose along stored out-edges; mutual confirmation then
    // requires the reverse entry to exist, which pattern-symmetric
    // matrices guarantee. Compare against the recommended symmetrized run.
    let dev = Device::default();
    let a = Collection::Atmosmodm.generate(1000);
    assert!(!a.is_symmetric() && a.is_pattern_symmetric());
    let directed = a.abs_offdiag(); // |A'| without + transpose
    let cfg = FactorConfig::paper_default(2);
    let out_dir = parallel_factor(&dev, &directed, &cfg);
    out_dir.factor.validate(&directed).unwrap();
    let out_sym = parallel_factor(&dev, &prepare_undirected(&a), &cfg);
    // both capture the dominant-axis chains on this matrix class
    let c_dir = weight_coverage(&out_dir.factor, &a);
    let c_sym = weight_coverage(&out_sym.factor, &a);
    assert!(c_dir > 0.9, "directed coverage {c_dir:.3}");
    assert!((c_dir - c_sym).abs() < 0.05, "directed {c_dir:.3} vs sym {c_sym:.3}");
}

#[test]
fn f32_pipeline_matches_f64_structure() {
    // single precision is the paper's default for extraction (Sec. 5)
    let dev = Device::default();
    let a64 = Collection::Aniso2.generate(900);
    let a32: Csr<f32> = a64.cast::<f32>();
    let cfg = FactorConfig::paper_default(2);
    let (f64out, _) = extract_linear_forest(&dev, &prepare_undirected(&a64), &cfg).unwrap();
    let (f32out, _) = extract_linear_forest(&dev, &prepare_undirected(&a32), &cfg).unwrap();
    // same structural outcome (weights differ only in rounding)
    assert_eq!(f64out.num_paths(), f32out.num_paths());
    assert_eq!(f64out.perm, f32out.perm);
    let e64 = f64out.factor.edges().len();
    let e32 = f32out.factor.edges().len();
    assert_eq!(e64, e32);
}

#[test]
fn path_length_stats_reflect_anisotropy() {
    // ANISO1's forest should be dominated by long x-chains, ECOLOGY's by
    // shorter randomly-oriented segments
    let dev = Device::default();
    let cfg = FactorConfig::paper_default(2);
    let aniso = Collection::Aniso1.generate(900);
    let (fa, _) = extract_linear_forest(&dev, &prepare_undirected(&aniso), &cfg).unwrap();
    let la = fa.paths.path_lengths();
    let mean_a = la.iter().sum::<usize>() as f64 / la.len() as f64;
    assert!(mean_a > 8.0, "ANISO mean path length {mean_a:.1}");
    let eco = Collection::Ecology1.generate(900);
    let (fe, _) = extract_linear_forest(&dev, &prepare_undirected(&eco), &cfg).unwrap();
    let le = fe.paths.path_lengths();
    let mean_e = le.iter().sum::<usize>() as f64 / le.len() as f64;
    assert!(mean_a > mean_e, "aniso {mean_a:.1} vs ecology {mean_e:.1}");
}
