//! Backend/fusion equivalence: the model device and the tuned CPU backend,
//! each with the peephole fusion pass on and off, must be observationally
//! indistinguishable — bit-identical forests on random and stencil graphs,
//! and identical `DeviceStats`-visible launch counts across backends (the
//! launch stream is a property of the algorithm and the fusion setting,
//! never of the execution backend). Fused runs must launch strictly fewer
//! kernels, and the fusion counters must show the peephole rules firing.

use linear_forest::kernel::backend;
use linear_forest::prelude::*;
use linear_forest::sparse::Coo;
use proptest::prelude::*;

fn device(kind: BackendKind, fuse: bool) -> Device {
    let dev = Device::with_backend(DeviceConfig::default(), backend::make(kind));
    dev.set_fusion(fuse);
    dev
}

/// Random undirected weighted graph with isolated vertices and duplicate
/// weights (the tie-heavy case; any combine-order slip would surface).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1u32..20),
            0..(n * 3),
        )
        .prop_map(|es| {
            es.into_iter()
                .map(|(u, v, w)| (u, v, w as f64 * 0.1))
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Csr<f64> {
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::new();
    for &(u, v, w) in edges {
        if u != v && seen.insert((u.min(v), u.max(v))) {
            coo.push_sym(u, v, w);
        }
    }
    Csr::from_coo(coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn backends_and_fusion_bit_identical_on_random_graphs(
        (n, edges) in graph_strategy(),
    ) {
        let ap = prepare_undirected(&build(n, &edges));
        let cfg = FactorConfig::paper_default(2);
        let mut launches = Vec::new();
        let mut reference = None;
        for kind in [BackendKind::Model, BackendKind::Cpu] {
            for fuse in [true, false] {
                let dev = device(kind, fuse);
                let (forest, _) = extract_linear_forest(&dev, &ap, &cfg)
                    .unwrap_or_else(|e| panic!("{kind}/fuse={fuse}: {e}"));
                launches.push(dev.stats().launches);
                match &reference {
                    None => reference = Some(forest),
                    Some(base) => {
                        prop_assert_eq!(&base.factor, &forest.factor,
                            "{}/fuse={}: factor diverged", kind, fuse);
                        prop_assert_eq!(&base.paths, &forest.paths,
                            "{}/fuse={}: paths diverged", kind, fuse);
                        prop_assert_eq!(&base.perm, &forest.perm,
                            "{}/fuse={}: permutation diverged", kind, fuse);
                        prop_assert_eq!(&base.cycles.removed, &forest.cycles.removed,
                            "{}/fuse={}: removed edges diverged", kind, fuse);
                    }
                }
            }
        }
        // order: (model,fused) (model,unfused) (cpu,fused) (cpu,unfused)
        prop_assert_eq!(launches[0], launches[2], "fused launch counts differ across backends");
        prop_assert_eq!(launches[1], launches[3], "unfused launch counts differ across backends");
        prop_assert!(launches[0] < launches[1], "fusion saved no launches: {:?}", launches);
    }
}

#[test]
fn stencil_suite_fusion_fires_and_forests_agree() {
    let cfg = FactorConfig::paper_default(2);
    let cases: Vec<(&str, Csr<f64>)> = vec![
        ("grid2d/ANISO1", grid2d(20, 20, &ANISO1)),
        ("grid2d/ANISO2", grid2d(20, 20, &ANISO2)),
        ("grid2d/FIVE_POINT", grid2d(20, 20, &FIVE_POINT)),
        ("aniso3", aniso3(16, 16)),
        ("grid3d", grid3d(8, 8, 8, &Stencil7::symmetric(6.0, -1.0, -2.0, -0.5))),
    ];
    for (name, a) in cases {
        let ap = prepare_undirected(&a);
        let fused_dev = device(BackendKind::Cpu, true);
        let (ffused, _) = extract_linear_forest(&fused_dev, &ap, &cfg).unwrap();
        let unfused_dev = device(BackendKind::Cpu, false);
        let (funfused, _) = extract_linear_forest(&unfused_dev, &ap, &cfg).unwrap();

        assert_eq!(ffused.factor, funfused.factor, "{name}");
        assert_eq!(ffused.paths, funfused.paths, "{name}");
        assert_eq!(ffused.perm, funfused.perm, "{name}");

        let (lf, lu) = (fused_dev.stats().launches, unfused_dev.stats().launches);
        assert!(lf < lu, "{name}: fused {lf} launches, unfused {lu}");

        // The peephole pass demonstrably fired, and the launch savings
        // equal the number of fused pairs.
        let fs = fused_dev.fusion_stats();
        assert!(fs.fused() > 0, "{name}: no rules fired");
        assert_eq!(lu - lf, fs.fused(), "{name}: savings ≠ fused pairs");
        // The unfused device attempted the same pairs but fused none.
        let fsu = unfused_dev.fusion_stats();
        assert_eq!(fsu.fused(), 0, "{name}");
        assert_eq!(fsu.attempted, fs.attempted, "{name}");
    }
}

#[test]
fn per_kernel_launch_stats_agree_across_backends() {
    // Not just totals: the per-kernel launch multiset must match, so a
    // backend can never silently reroute work through different kernels.
    let a: Csr<f64> = grid2d(16, 16, &ANISO2);
    let ap = prepare_undirected(&a);
    let cfg = FactorConfig::paper_default(2);
    for fuse in [true, false] {
        let dm = device(BackendKind::Model, fuse);
        let dc = device(BackendKind::Cpu, fuse);
        extract_linear_forest(&dm, &ap, &cfg).unwrap();
        extract_linear_forest(&dc, &ap, &cfg).unwrap();
        let (sm, sc) = (dm.stats(), dc.stats());
        let mut km: Vec<(String, u64)> = sm
            .kernels
            .iter()
            .map(|(k, v)| (k.clone(), v.launches))
            .collect();
        let mut kc: Vec<(String, u64)> = sc
            .kernels
            .iter()
            .map(|(k, v)| (k.clone(), v.launches))
            .collect();
        km.sort();
        kc.sort();
        assert_eq!(km, kc, "fuse={fuse}");
    }
}
