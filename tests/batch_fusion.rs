//! Batched extraction must be invisible: submitting K graphs to the
//! [`ExtractionService`] and fusing them into one block-diagonal run has
//! to produce exactly the forests K solo pipelines produce — same factor
//! slots, paths, permutations, removed cycle edges, and quality report —
//! on random tie-heavy graphs where any offset slip in a tie-break would
//! surface. (`factor_iterations` is the one deliberate exception: the
//! fused run detects maximality globally, so it reports the fused count.)

use linear_forest::batch::{reset_stats, BatchConfig, ExtractionService, FusedBatch};
use linear_forest::prelude::*;
use linear_forest::sparse::Coo;
use proptest::prelude::*;
use std::time::Instant;

/// Random symmetric graph with deliberate degeneracy: isolated vertices
/// and weights quantized to one decimal (many exact duplicates).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1u32..20),
            0..(n * 3),
        )
        .prop_map(|es| {
            es.into_iter()
                .map(|(u, v, w)| (u, v, w as f64 * 0.1))
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Csr<f64> {
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::new();
    for &(u, v, w) in edges {
        if u != v && seen.insert((u.min(v), u.max(v))) {
            coo.push_sym(u, v, w);
        }
    }
    Csr::from_coo(coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End to end through the service: K submissions drained as one batch
    /// equal K solo pipelines run with each job's content salt.
    #[test]
    fn service_batch_equals_solo_runs(
        graphs in proptest::collection::vec(graph_strategy(), 2..6),
        frontier_bit in 0u32..2,
    ) {
        let frontier = frontier_bit == 1;
        reset_stats();
        let graphs: Vec<Csr<f64>> =
            graphs.iter().map(|(n, es)| build(*n, es)).collect();
        let dev = Device::default();
        let cfg = FactorConfig::paper_default(2).with_frontier(frontier);
        let mut svc = ExtractionService::new(BatchConfig {
            max_batch_jobs: graphs.len(),
            factor: cfg,
            ..BatchConfig::default()
        })
        .unwrap();
        let now = Instant::now();
        for (i, g) in graphs.iter().enumerate() {
            svc.submit(format!("g{i}"), g.clone(), now).unwrap();
        }
        let outcomes = svc.drain(&dev);
        prop_assert_eq!(outcomes.len(), graphs.len());

        for (o, g) in outcomes.iter().zip(&graphs) {
            let got = o.result.as_ref().expect("valid job succeeds");
            // the solo equivalent: same preparation, the job's own salt
            let ap = prepare_undirected(g);
            let (solo, _) = extract_linear_forest(
                &dev,
                &ap,
                &cfg.with_charge_salt(o.salt),
            )
            .unwrap();
            prop_assert_eq!(&got.forest.factor, &solo.factor);
            prop_assert_eq!(&got.forest.paths, &solo.paths);
            prop_assert_eq!(&got.forest.perm, &solo.perm);
            prop_assert_eq!(&got.forest.cycles.removed, &solo.cycles.removed);
            prop_assert_eq!(&got.quality, &solo.quality_report(g, None));
        }
    }

    /// The fusion layer alone: fuse + one extraction + scatter equals solo
    /// extractions of the prepared parts under the same salts.
    #[test]
    fn fused_scatter_equals_solo_extractions(
        graphs in proptest::collection::vec(graph_strategy(), 2..5),
    ) {
        let prepared: Vec<Csr<f64>> = graphs
            .iter()
            .map(|(n, es)| prepare_undirected(&build(*n, es)))
            .collect();
        let parts: Vec<&Csr<f64>> = prepared.iter().collect();
        let salts = FusedBatch::content_salts(&parts);
        let fused = FusedBatch::fuse(&parts, &salts).unwrap();
        let dev = Device::default();
        let cfg = FactorConfig::paper_default(2);
        let (forest, _) = linear_forest::core::extract_linear_forest_with(
            &dev,
            &fused.graph,
            &cfg,
            Some(&fused.charge_keys),
            &mut linear_forest::core::FactorWorkspace::new(),
        )
        .unwrap();
        let scattered = linear_forest::batch::scatter_forests(&forest, &fused.offsets);
        prop_assert_eq!(scattered.len(), prepared.len());
        for ((got, p), &salt) in scattered.iter().zip(&prepared).zip(&salts) {
            let (solo, _) =
                extract_linear_forest(&dev, p, &cfg.with_charge_salt(salt)).unwrap();
            prop_assert_eq!(&got.factor, &solo.factor);
            prop_assert_eq!(&got.paths, &solo.paths);
            prop_assert_eq!(&got.perm, &solo.perm);
            prop_assert_eq!(&got.cycles.removed, &solo.cycles.removed);
        }
    }
}
