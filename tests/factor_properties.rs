//! Property-based tests over the whole factor → forest → permutation
//! pipeline on random weighted graphs.

use linear_forest::core::permute::is_tridiagonalizing;
use linear_forest::prelude::*;
use linear_forest::sparse::Coo;
use proptest::prelude::*;

/// Random undirected weighted graph strategy: (n, edge list).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32, f64)>)> {
    (4usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 0.01f64..10.0),
            0..(n * 3),
        );
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(u32, u32, f64)]) -> Csr<f64> {
    let mut coo = Coo::new(n, n);
    let mut seen = std::collections::HashSet::new();
    for &(u, v, w) in edges {
        if u != v && seen.insert((u.min(v), u.max(v))) {
            coo.push_sym(u, v, w);
        }
    }
    Csr::from_coo(coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_factor_invariants((n, edges) in graph_strategy(), nb in 1usize..=4) {
        let a = build(n, &edges);
        let dev = Device::default();
        let out = parallel_factor(&dev, &a, &FactorConfig::paper_default(nb).with_max_iters(40));
        prop_assert!(out.factor.validate(&a).is_ok());
        for v in 0..n {
            prop_assert!(out.factor.degree(v) <= nb);
        }
        // coverage bounded by 1
        let c = weight_coverage(&out.factor, &a);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
    }

    #[test]
    fn greedy_factor_is_maximal((n, edges) in graph_strategy(), nb in 1usize..=3) {
        let a = build(n, &edges);
        let f = greedy_factor(&a, nb);
        prop_assert!(f.validate(&a).is_ok());
        prop_assert!(f.is_maximal(&a));
    }

    #[test]
    fn forest_pipeline_invariants((n, edges) in graph_strategy()) {
        let a = build(n, &edges);
        let dev = Device::default();
        let (forest, _) = extract_linear_forest(&dev, &a, &FactorConfig::paper_default(2).with_max_iters(20)).unwrap();
        // acyclic with degree ≤ 2
        prop_assert!(identify_paths_sequential(&forest.factor).is_ok());
        // permutation is a bijection that tridiagonalizes the forest
        let mut seen = vec![false; n];
        for &v in &forest.perm {
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        prop_assert!(is_tridiagonalizing(&forest.factor, &forest.perm));
        // path positions: within each path, positions are 1..=len
        for path in forest.paths.to_paths() {
            for (i, &v) in path.iter().enumerate() {
                prop_assert_eq!(forest.paths.position[v as usize] as usize, i + 1);
            }
            // consecutive path vertices are factor partners
            for w in path.windows(2) {
                prop_assert!(forest.factor.contains(w[0] as usize, w[1]));
            }
        }
    }

    #[test]
    fn cycle_breaking_removes_weakest((n, edges) in graph_strategy()) {
        let a = build(n, &edges);
        let dev = Device::default();
        let out = parallel_factor(&dev, &a, &FactorConfig::paper_default(2).with_max_iters(20));
        let mut fp = out.factor.clone();
        let mut fs = out.factor.clone();
        let rp = break_cycles(&dev, &mut fp);
        let rs = break_cycles_sequential(&mut fs);
        let mut ep = rp.removed.clone();
        let mut es = rs.removed.clone();
        ep.sort();
        es.sort();
        prop_assert_eq!(ep, es, "parallel and sequential disagree");
        prop_assert_eq!(fp, fs);
    }

    #[test]
    fn coverage_parallel_close_to_greedy((n, edges) in graph_strategy()) {
        // the paper's Table 5 finding: within ~0.05 of sequential greedy
        let a = build(n, &edges);
        let dev = Device::default();
        let out = parallel_factor(&dev, &a, &FactorConfig::paper_default(2).with_max_iters(60));
        let seq = greedy_factor(&a, 2);
        let cp = weight_coverage(&out.factor, &a);
        let cs = weight_coverage(&seq, &a);
        // random small graphs can differ more than the paper's large ones;
        // allow slack but catch gross regressions
        prop_assert!(cp >= cs - 0.25, "parallel {cp:.3} vs greedy {cs:.3}");
    }
}
