//! Checked-mode end-to-end runs: zero invariant violations across the
//! synthetic collection and the paper's stencils, differential-oracle
//! agreement on seeded random graphs, and structured (non-panicking)
//! detection of deliberately corrupted intermediate state.

use linear_forest::check::{CheckError, Fault, Stage};
use linear_forest::prelude::*;

#[test]
fn collection_suite_has_zero_violations() {
    let dev = Device::default();
    let cfg = FactorConfig::paper_default(2);
    for m in Collection::ALL {
        let a = m.generate(300);
        match tridiagonal_from_matrix_checked(&dev, &a, &cfg, &CheckOptions::default()) {
            Ok((tri, forest, _, report)) => {
                assert_eq!(tri.len(), a.nrows(), "{}", m.name());
                assert!(forest.num_paths() >= 1, "{}", m.name());
                assert_eq!(report.stages.len(), 6, "{}: {report}", m.name());
            }
            Err(e) => panic!("{}: checked pipeline failed: {e}", m.name()),
        }
    }
}

#[test]
fn stencil_suite_has_zero_violations() {
    let dev = Device::default();
    let cfg = FactorConfig::paper_default(2);
    let cases: Vec<(&str, Csr<f64>)> = vec![
        ("grid2d/ANISO1", grid2d(20, 20, &ANISO1)),
        ("grid2d/ANISO2", grid2d(20, 20, &ANISO2)),
        ("grid2d/FIVE_POINT", grid2d(20, 20, &FIVE_POINT)),
        ("aniso3", aniso3(16, 16)),
        ("grid3d", grid3d(8, 8, 8, &Stencil7::symmetric(6.0, -1.0, -2.0, -0.5))),
    ];
    for (name, a) in cases {
        let (_, _, _, report) =
            tridiagonal_from_matrix_checked(&dev, &a, &cfg, &CheckOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(report.stages.len(), 6, "{name}");
    }
}

#[test]
fn differential_oracle_agrees_on_twenty_seeded_graphs() {
    let dev = Device::default();
    let report = differential_suite(&dev, 20, 200);
    // 20 random graphs + the stencil cases
    assert!(report.cases.len() >= 25, "only {} cases ran", report.cases.len());
    assert!(report.passed(), "{report}");
}

#[test]
fn corrupted_factor_is_caught_with_structured_error() {
    let dev = Device::default();
    let a: Csr<f64> = grid2d(12, 12, &ANISO1);
    let ap = prepare_undirected(&a);
    let opts = CheckOptions { fault: Some(Fault::BreakMutuality) };
    let err = extract_linear_forest_checked(&dev, &ap, &FactorConfig::paper_default(2), &opts)
        .unwrap_err();
    match &err {
        CheckError::Audit { stage, violations } => {
            assert_eq!(*stage, Stage::Factor);
            assert!(!violations.is_empty());
            assert!(
                violations.iter().any(|v| v.detail.contains("mutual")),
                "violations: {violations:?}"
            );
        }
        other => panic!("expected audit error, got {other:?}"),
    }
    // the error is a std::error::Error with a readable report, no panic
    let msg = err.to_string();
    assert!(msg.contains("invariant audit failed after stage 'factor'"), "{msg}");
}

#[test]
fn checked_and_unchecked_pipelines_agree() {
    let dev = Device::default();
    let a = Collection::Thermal2.generate(500);
    let cfg = FactorConfig::paper_default(2);
    let (tri_u, forest_u, _) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
    let (tri_c, forest_c, _, _) =
        tridiagonal_from_matrix_checked(&dev, &a, &cfg, &CheckOptions::default()).unwrap();
    assert_eq!(tri_u, tri_c);
    assert_eq!(forest_u.perm, forest_c.perm);
    assert_eq!(forest_u.factor, forest_c.factor);
}
