//! Robustness of the MatrixMarket reader: structured, line-numbered
//! errors and **no panics** on arbitrary byte-level corruption of the
//! input — the reader's error path is part of the library's public
//! contract (`lf` feeds it user files).

use linear_forest::sparse::mm::{read_coo, read_csr_path, MmError};
use linear_forest::sparse::Coo;
use proptest::prelude::*;

/// A well-formed general-coordinate file the mutation tests corrupt.
const VALID: &str = "%%MatrixMarket matrix coordinate real general\n\
                     % comment line\n\
                     4 4 6\n\
                     1 1 1.5\n\
                     2 1 -2.0\n\
                     2 3 0.5\n\
                     3 3 4.0\n\
                     4 2 1.25\n\
                     4 4 -0.75\n";

#[test]
fn valid_base_file_parses() {
    let coo: Coo<f64> = read_coo(VALID.as_bytes()).unwrap();
    assert_eq!(coo.nnz(), 6);
}

#[test]
fn nan_fixture_is_rejected_with_line_number() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/nan_weight.mtx");
    let err = read_csr_path::<f64>(path).unwrap_err();
    match &err {
        MmError::Parse { line, msg } => {
            assert_eq!(*line, 7, "NaN sits on line 7 of the fixture");
            assert!(msg.contains("non-finite"), "message: {msg}");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
    assert!(err.to_string().contains("line 7"), "display: {err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Single-byte corruption anywhere in a valid file: the reader may
    /// accept or reject, but must never panic.
    #[test]
    fn single_byte_mutation_never_panics(idx in 0usize..VALID.len(), byte in 0u8..=255u8) {
        let mut data = VALID.as_bytes().to_vec();
        data[idx] = byte;
        let _ = read_coo::<f64>(&data[..]);
    }

    /// Multi-byte corruption.
    #[test]
    fn multi_byte_mutation_never_panics(
        muts in proptest::collection::vec((0usize..VALID.len(), 0u8..=255u8), 1..16)
    ) {
        let mut data = VALID.as_bytes().to_vec();
        for (idx, byte) in muts {
            data[idx] = byte;
        }
        let _ = read_coo::<f64>(&data[..]);
    }

    /// Truncation at every possible byte offset: a prefix of a valid
    /// file is reported as an error (or parses, if cut between entries),
    /// never a panic.
    #[test]
    fn truncation_never_panics(len in 0usize..VALID.len()) {
        let _ = read_coo::<f64>(&VALID.as_bytes()[..len]);
    }

    /// Completely arbitrary bytes.
    #[test]
    fn random_garbage_never_panics(data in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let _ = read_coo::<f64>(&data[..]);
    }
}

#[test]
fn errors_are_structured_not_stringly_io() {
    // corrupting the size line yields a Parse error with the right line
    let bad = VALID.replace("4 4 6", "4 4");
    match read_coo::<f64>(bad.as_bytes()) {
        Err(MmError::Parse { line: 3, .. }) => {}
        other => panic!("expected parse error at line 3, got {other:?}"),
    }
}
