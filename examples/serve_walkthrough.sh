#!/usr/bin/env bash
# Curl walkthrough for the lf-serve HTTP API (DESIGN.md §15).
#
# Starts a server with a three-tenant config, submits graphs in both
# wire formats, polls, fetches a forest, inspects /metrics, and drains
# cleanly on SIGTERM. Requires: a release build (`cargo build --release`)
# and curl.
set -euo pipefail

LF=${LF:-./target/release/lf}
ADDR=${ADDR:-127.0.0.1:8080}
BASE="http://$ADDR"

# --- a tenant config: name priority weight queue_cap -----------------
# Higher priority is shed later; weight is the deficit-round-robin
# share; unknown tenants land in a shared "default" queue.
cat > /tmp/tenants.conf <<'EOF'
acme  2 2 64
beta  1 1 32
guest 0 1 16
EOF

# --- a small anisotropic grid in MatrixMarket format -----------------
python3 - <<'EOF' > /tmp/grid.mtx
n = 16
edges = []
for y in range(n):
    for x in range(n):
        v = y * n + x + 1
        if x + 1 < n:
            edges.append((v, v + 1, 2.0))   # heavy axis
        if y + 1 < n:
            edges.append((v, v + n, 1.0))   # light axis
print("%%MatrixMarket matrix coordinate real symmetric")
print(n * n, n * n, len(edges))
for a, b, w in edges:
    print(a, b, w)
EOF

"$LF" serve --addr "$ADDR" --workers 2 --tenant-config /tmp/tenants.conf &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT
until curl -sf "$BASE/healthz" >/dev/null; do sleep 0.1; done

echo "== submit (MatrixMarket, tenant via header) =="
RESP=$(curl -sf -X POST --data-binary @/tmp/grid.mtx \
  -H 'X-Tenant: acme' "$BASE/v1/forest")
echo "$RESP"   # {"job":1,"tenant":"acme","format":"matrixmarket"}
JOB=$(echo "$RESP" | grep -o '"job":[0-9]*' | cut -d: -f2)

echo "== poll until done =="
until curl -sf "$BASE/v1/jobs/$JOB" | grep -q '"state":"done"'; do
  sleep 0.1
done
curl -sf "$BASE/v1/jobs/$JOB"
echo

echo "== fetch the forest (permutation, one vertex per line) =="
curl -sf "$BASE/v1/jobs/$JOB/forest" | head -5
echo "..."

echo "== raw-CSR wire format, tenant via query string =="
# csr <n> <n> <nnz>, then row_ptr, col_idx, and values lines.
printf 'csr 3 3 4\n0 1 3 4\n1 0 2 1\n1.5 1.5 2.5 2.5\n' \
  | curl -sf -X POST --data-binary @- "$BASE/v1/forest?tenant=walkin"
echo

echo "== a malformed body is a typed one-line 400 =="
curl -s -X POST -d 'not a matrix' "$BASE/v1/forest" || true
echo

echo "== metrics (Prometheus text) =="
curl -sf "$BASE/metrics" | grep -E 'lf_serve_(requests|completed)_total' | head -8

echo "== drain: SIGTERM completes queued work, then exits 0 =="
kill -TERM "$SRV"
wait "$SRV"
trap - EXIT
echo "drained cleanly"
