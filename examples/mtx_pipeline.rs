//! Run the full pipeline on a MatrixMarket file — the workflow for real
//! SuiteSparse matrices (Table 3) when the `.mtx` files are available.
//! Without an argument, a collection stand-in is generated, written to a
//! temporary `.mtx`, and read back, demonstrating the full I/O round trip.
//!
//! ```text
//! cargo run --release --example mtx_pipeline [file.mtx]
//! ```

use linear_forest::prelude::*;
use linear_forest::sparse::mm;

fn main() {
    let arg = std::env::args().nth(1);
    let (name, a): (String, Csr<f64>) = match &arg {
        Some(path) => {
            let a = mm::read_csr_path(path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            });
            (path.clone(), a)
        }
        None => {
            // generate ATMOSMODM-like stand-in, round-trip through .mtx
            let a = Collection::Atmosmodm.generate(30_000);
            let tmp = std::env::temp_dir().join("lf_demo_atmosmodm.mtx");
            mm::write_csr_path(&tmp, &a).expect("write .mtx");
            let a2: Csr<f64> = mm::read_csr_path(&tmp).expect("read back .mtx");
            assert_eq!(a.nnz(), a2.nnz(), "round trip must preserve nnz");
            (format!("{} (stand-in via {})", "ATMOSMODM", tmp.display()), a2)
        }
    };

    println!(
        "{name}: N = {}, nnz = {}, symmetric = {}",
        a.nrows(),
        a.nnz(),
        a.is_symmetric()
    );

    let dev = Device::default();
    let cfg = FactorConfig::paper_default(2);
    let (tri, forest, timings) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();

    println!(
        "c_id = {:.3}   c_π(5) = {:.3}   paths = {}   cycles broken = {}",
        identity_coverage(&a),
        weight_coverage(&forest.factor, &a),
        forest.num_paths(),
        forest.cycles.cycles,
    );
    println!(
        "tridiagonal system: {} rows, |off-diag| weight {:.3e}",
        tri.len(),
        tri.offdiag_weight()
    );

    println!("\nsetup breakdown (paper Fig. 6):");
    let total = timings.total_model_s();
    for (phase, s) in timings.phases() {
        println!(
            "  {:>16}: {:>5.1}% of model time, {:>4} launches, {:>9.3} ms wall",
            phase,
            100.0 * s.model_time_s / total,
            s.launches,
            s.wall_time_s * 1e3
        );
    }

    // and the payoff: BiCGStab with the constructed preconditioner
    let (b, xt) = manufactured_problem(&dev, &a);
    let opts = SolveOpts {
        tol: 1e-10,
        max_iters: 3000,
    };
    let alg = AlgTriScalPrecond::new(&dev, &a, &cfg);
    let (_, st_alg) = bicgstab(&dev, &a, &b, &alg, &opts, Some(&xt));
    let (_, st_jac) = bicgstab(&dev, &a, &b, &JacobiPrecond::new(&a), &opts, Some(&xt));
    println!(
        "\nBiCGStab iterations: AlgTriScalPrecond = {}, Jacobi = {}",
        st_alg.iterations, st_jac.iterations
    );
}
