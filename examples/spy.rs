//! ASCII "spy plot" of a matrix before and after the linear-forest
//! permutation — makes the tridiagonalization visible: the strong
//! coefficients migrate onto the sub-/superdiagonal band.
//!
//! ```text
//! cargo run --release --example spy [grid_side]
//! ```

use linear_forest::prelude::*;

/// Render an ASCII density plot of |A| on a `cells × cells` raster:
/// ' ' empty, '.' weak weight, 'o' medium, '#' strong.
fn spy(a: &Csr<f64>, cells: usize) -> Vec<String> {
    let n = a.nrows();
    let mut grid = vec![0.0f64; cells * cells];
    let scale = cells as f64 / n as f64;
    for (r, c, v) in a.iter() {
        if r == c {
            continue;
        }
        let (i, j) = (
            ((r as f64 * scale) as usize).min(cells - 1),
            ((c as f64 * scale) as usize).min(cells - 1),
        );
        grid[i * cells + j] += v.abs();
    }
    let max = grid.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    grid.chunks(cells)
        .map(|row| {
            row.iter()
                .map(|&w| {
                    let f = w / max;
                    if f == 0.0 {
                        ' '
                    } else if f < 0.15 {
                        '.'
                    } else if f < 0.5 {
                        'o'
                    } else {
                        '#'
                    }
                })
                .collect()
        })
        .collect()
}

fn band_weight_fraction(a: &Csr<f64>, band: usize) -> f64 {
    let total: f64 = a
        .iter()
        .filter(|&(r, c, _)| r != c)
        .map(|(_, _, v)| v.abs())
        .sum();
    let near: f64 = a
        .iter()
        .filter(|&(r, c, _)| r != c && (r as i64 - c as i64).unsigned_abs() as usize <= band)
        .map(|(_, _, v)| v.abs())
        .sum();
    near / total.max(f64::MIN_POSITIVE)
}

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let dev = Device::default();
    // ANISO2: strong couplings on the grid anti-diagonal — far off-band in
    // the natural ordering.
    let a: Csr<f64> = grid2d(side, side, &ANISO2);
    let (_, forest, _) = tridiagonal_from_matrix(&dev, &a, &FactorConfig::paper_default(2)).unwrap();
    let permuted = a.permute_sym(&forest.perm);

    let cells = 36;
    let left = spy(&a, cells);
    let right = spy(&permuted, cells);
    println!(
        "ANISO2 {side}x{side}: |A| natural order (left) vs forest-permuted QᵀAQ (right)\n"
    );
    for (l, r) in left.iter().zip(&right) {
        println!("  {l}   |   {r}");
    }
    println!(
        "\nweight within the tridiagonal band: natural {:.1}% → permuted {:.1}%",
        100.0 * band_weight_fraction(&a, 1),
        100.0 * band_weight_fraction(&permuted, 1),
    );
    println!(
        "forest coverage c_pi = {:.3} (c_id was {:.3}) — the '#' mass \
         collapses onto the diagonal band",
        weight_coverage(&forest.factor, &a),
        identity_coverage(&a),
    );
}
