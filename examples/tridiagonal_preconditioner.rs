//! The paper's application (Sec. 6): build the four preconditioners on an
//! anisotropic model problem and compare BiCGStab convergence — a small-
//! scale rendition of Fig. 4.
//!
//! ```text
//! cargo run --release --example tridiagonal_preconditioner [grid_side]
//! ```

use linear_forest::prelude::*;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let dev = Device::default();

    // ANISO2: the strong couplings run along the grid anti-diagonal, so
    // the natural-order tridiagonal part is nearly useless — the paper's
    // motivating case for algebraic construction.
    let a: Csr<f64> = grid2d(side, side, &ANISO2);
    println!(
        "ANISO2 {side}x{side}: N = {}, nnz = {}",
        a.nrows(),
        a.nnz()
    );

    let (b, xt) = manufactured_problem(&dev, &a);
    let opts = SolveOpts {
        tol: 1e-10,
        max_iters: 5000,
    };
    let cfg = FactorConfig::paper_default(2);

    let jacobi = JacobiPrecond::new(&a);
    let triscal = TriScalPrecond::new(&a);
    let algscal = AlgTriScalPrecond::new(&dev, &a, &cfg);
    let algblock = AlgTriBlockPrecond::new(&dev, &a, &cfg);

    println!(
        "\n{:<22} {:>10} {:>12} {:>12} {:>10}",
        "preconditioner", "coverage", "iterations", "rel.res.", "FRE"
    );
    let run = |name: &str, cov: Option<f64>, p: &dyn Preconditioner<f64>| {
        let (_, st) = bicgstab(&dev, &a, &b, p, &opts, Some(&xt));
        println!(
            "{:<22} {:>10} {:>12} {:>12.2e} {:>10.2e}",
            name,
            cov.map(|c| format!("{c:.3}")).unwrap_or_else(|| "-".into()),
            if st.converged {
                st.iterations.to_string()
            } else {
                format!(">{}", st.iterations)
            },
            st.rel_residual.last().copied().unwrap_or(f64::NAN),
            st.fre.last().copied().unwrap_or(f64::NAN),
        );
    };
    run("Jacobi", None, &jacobi);
    run(
        "TriScalPrecond",
        Preconditioner::<f64>::coverage(&triscal),
        &triscal,
    );
    run(
        "AlgTriScalPrecond",
        Preconditioner::<f64>::coverage(&algscal),
        &algscal,
    );
    run(
        "AlgTriBlockPrecond",
        Preconditioner::<f64>::coverage(&algblock),
        &algblock,
    );

    println!(
        "\nThe algebraic preconditioners capture the strong anti-diagonal \
         chains that the natural ordering misses — same matrix, same \
         tridiagonal solve cost, far better convergence."
    );
}
