//! Maximal path sets for the shortest-superstring problem — the paper's
//! introduction cites linear forests as the edge analog of the maximal
//! path set problem used to approximate DNA superstrings [5, 29].
//!
//! We build an overlap graph over random DNA fragments (edge weight =
//! suffix/prefix overlap length), extract a linear forest, and chain the
//! fragments along its paths into superstrings.
//!
//! ```text
//! cargo run --release --example path_cover [num_fragments]
//! ```

use linear_forest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Longest overlap between a suffix of `a` and a prefix of `b`.
fn overlap(a: &[u8], b: &[u8]) -> usize {
    let max = a.len().min(b.len());
    (1..=max)
        .rev()
        .find(|&k| a[a.len() - k..] == b[..k])
        .unwrap_or(0)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let frag_len = 24usize;
    let mut rng = SmallRng::seed_from_u64(7);

    // Fragments sampled from a long hidden genome, so overlaps exist.
    let genome: Vec<u8> = (0..n * 6)
        .map(|_| b"ACGT"[rng.random_range(0..4)])
        .collect();
    let fragments: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            let s = rng.random_range(0..genome.len() - frag_len);
            genome[s..s + frag_len].to_vec()
        })
        .collect();

    // Overlap graph: undirected weight = max overlap in either direction.
    let mut coo = Coo::<f64>::new(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let w = overlap(&fragments[i], &fragments[j]).max(overlap(&fragments[j], &fragments[i]));
            if w >= 4 {
                coo.push_sym(i as u32, j as u32, w as f64);
            }
        }
    }
    let a = Csr::from_coo(coo);
    println!(
        "overlap graph: {} fragments, {} overlap edges (≥ 4 bases)",
        n,
        a.nnz() / 2
    );

    // Maximum linear forest = vertex-disjoint fragment chains maximizing
    // total overlap, i.e. maximal compression of the superstring.
    let dev = Device::default();
    let (forest, _) = extract_linear_forest(
        &dev,
        &prepare_undirected(&a),
        &FactorConfig::paper_default(2).with_max_iters(25),
    ).unwrap();
    let paths = forest.paths.to_paths();
    let chained: usize = paths.iter().filter(|p| p.len() > 1).count();
    let longest = paths.iter().map(|p| p.len()).max().unwrap_or(0);
    let overlap_total = forest.weight();
    println!(
        "forest: {} paths ({} real chains), longest chain {} fragments, \
         total overlap captured {:.0} bases",
        paths.len(),
        chained,
        longest,
        overlap_total
    );

    // Compression: naive concatenation vs chained superstrings.
    let naive = n * frag_len;
    let compressed = naive - overlap_total as usize;
    println!(
        "superstring length: naive {} → chained {} ({:.1}% saved)",
        naive,
        compressed,
        100.0 * overlap_total / naive as f64
    );

    // Show one chain merged into an actual superstring.
    if let Some(path) = paths.iter().find(|p| p.len() >= 3) {
        let mut s: Vec<u8> = fragments[path[0] as usize].clone();
        for w in path.windows(2) {
            let frag = &fragments[w[1] as usize];
            let k = overlap(&s, frag);
            s.extend_from_slice(&frag[k..]);
        }
        println!(
            "\nexample chain of {} fragments merged into {} bases:\n  {}",
            path.len(),
            s.len(),
            String::from_utf8_lossy(&s[..s.len().min(70)])
        );
    }
}
