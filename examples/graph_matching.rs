//! Classic weighted graph matching as the n = 1 special case of the
//! [0,n]-factor machinery (paper Sec. 1–2): compare the parallel matcher
//! against the greedy sequential baseline on random graphs.
//!
//! ```text
//! cargo run --release --example graph_matching [num_vertices]
//! ```

use linear_forest::prelude::*;
use linear_forest::sparse::random::random_symmetric;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let dev = Device::default();

    println!("random graphs with {n} vertices\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>8} {:>9}",
        "degree", "par c_π", "seq c_π", "ratio", "iters", "matched%"
    );
    for avg_degree in [4.0, 8.0, 16.0] {
        let a: Csr<f64> = random_symmetric(n, avg_degree, 0.1, 1.0, 42);
        let ap = prepare_undirected(&a);

        // parallel matching: [0,1]-factor, run to maximality
        let cfg = FactorConfig::paper_default(1).with_max_iters(100);
        let out = parallel_factor(&dev, &ap, &cfg);
        out.factor
            .validate(&ap)
            .expect("matching invariants violated");
        let c_par = weight_coverage(&out.factor, &a);

        // sequential greedy baseline (Alg. 1; ≥ 1/2 of the optimum)
        let seq = greedy_factor(&ap, 1);
        let c_seq = weight_coverage(&seq, &a);

        let matched = (0..n).filter(|&v| out.factor.degree(v) == 1).count();
        println!(
            "{:>8.1} {:>12.4} {:>12.4} {:>12.3} {:>8} {:>8.1}%",
            avg_degree,
            c_par,
            c_seq,
            c_par / c_seq,
            out.iterations,
            100.0 * matched as f64 / n as f64
        );
    }

    println!(
        "\nAs in the paper's Table 5, the parallel matcher reaches the \
         sequential greedy coverage to within a few percent, in a handful \
         of proposition rounds."
    );
}
