//! Directional coarsening for algebraic multigrid — one of the paper's
//! motivating applications (Sec. 1 cites linear forests with many strong
//! edges for directional AMG coarsening [24] and adaptive smoothers [30]).
//!
//! We build an unsmoothed-aggregation multigrid hierarchy by repeatedly
//! pairing vertices with a parallel [0,1]-factor (strongest-edge
//! matching) and forming the Galerkin coarse operator over the
//! aggregates. On an anisotropic problem the matching follows the strong
//! direction, which is exactly what a semicoarsening heuristic wants.
//!
//! ```text
//! cargo run --release --example amg_coarsening [grid_side]
//! ```

use linear_forest::prelude::*;
use linear_forest::sparse::Coo;

/// Galerkin coarse operator for piecewise-constant aggregation:
/// `A_c[ci][cj] = Σ_{i ∈ ci, j ∈ cj} a_ij`.
fn galerkin(a: &Csr<f64>, fine_to_coarse: &[u32], nc: usize) -> Csr<f64> {
    let mut coo = Coo::new(nc, nc);
    for (i, j, v) in a.iter() {
        coo.push(
            fine_to_coarse[i as usize],
            fine_to_coarse[j as usize],
            v,
        );
    }
    Csr::from_coo(coo)
}

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let dev = Device::default();
    let mut a: Csr<f64> = grid2d(side, side, &ANISO1);
    println!(
        "ANISO1 {side}x{side}: strong x-coupling (-1.0) vs weak y-coupling (-0.1)\n"
    );
    println!(
        "{:>5} {:>10} {:>12} {:>10} {:>12} {:>14}",
        "level", "N", "nnz", "pairs", "matched%", "x-aligned%"
    );

    let mut level = 0usize;
    let mut total_nnz = 0usize;
    let fine_nnz = a.nnz();
    while a.nrows() > 32 && level < 12 {
        total_nnz += a.nnz();
        let ap = prepare_undirected(&a);
        let matching = parallel_factor(
            &dev,
            &ap,
            &FactorConfig::paper_default(1).with_max_iters(20),
        )
        .factor;
        let (coarsening, _) = coarsen_by_matching(&dev, &ap, &matching);

        // on level 0 we can check the matching direction against geometry
        let x_aligned = if level == 0 {
            let pairs: Vec<(u32, u32)> = coarsening
                .groups
                .iter()
                .filter_map(|&(v, w)| w.map(|w| (v, w)))
                .collect();
            let aligned = pairs
                .iter()
                .filter(|&&(v, w)| (w as usize) == (v as usize) + 1) // x-neighbor
                .count();
            format!("{:.1}%", 100.0 * aligned as f64 / pairs.len().max(1) as f64)
        } else {
            "-".to_string()
        };

        let matched = 2 * coarsening.num_pairs();
        println!(
            "{:>5} {:>10} {:>12} {:>10} {:>9.1}% {:>14}",
            level,
            a.nrows(),
            a.nnz(),
            coarsening.num_pairs(),
            100.0 * matched as f64 / a.nrows() as f64,
            x_aligned
        );

        a = galerkin(&a, &coarsening.fine_to_coarse, coarsening.num_coarse());
        level += 1;
    }
    total_nnz += a.nnz();
    println!(
        "{:>5} {:>10} {:>12}",
        level,
        a.nrows(),
        a.nnz()
    );
    println!(
        "\noperator complexity Σ nnz(level) / nnz(fine) = {:.2} \
         (pairwise aggregation targets ≤ 2)",
        total_nnz as f64 / fine_nnz as f64
    );
    println!(
        "level-0 pairs overwhelmingly follow the strong x direction — the \
         matching implements semicoarsening without being told the grid."
    );
}
