//! The simulated-device cost model in isolation: how kernel traffic,
//! bandwidth, and launch overhead compose into the model times used to
//! reproduce the paper's GPU figures — and how to parameterize other
//! devices.
//!
//! ```text
//! cargo run --release --example device_model
//! ```

use linear_forest::prelude::*;

fn main() {
    // Three device parameterizations: the paper's RTX 2080 Ti, a V100
    // (what the paper suggests for double precision), and a slow PCIe-
    // bound configuration for contrast.
    let devices = [
        ("rtx2080ti", 616.0, 3.0),
        ("v100", 900.0, 3.0),
        ("pcie-bound", 16.0, 8.0),
    ];
    let a = Collection::Atmosmodm.generate(30_000);
    println!(
        "ATMOSMODM stand-in, N = {}, nnz = {} — full preconditioner setup\n",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:>12} {:>10} {:>12} {:>10} {:>12} {:>14}",
        "device", "GB/s", "launches", "MB moved", "model ms", "ms / launch"
    );
    for (name, gbps, overhead_us) in devices {
        let dev = Device::new(DeviceConfig {
            name: name.into(),
            bandwidth_gbps: gbps,
            launch_overhead_us: overhead_us,
            ..DeviceConfig::default()
        });
        let cfg = FactorConfig::paper_default(2);
        let (_, _, timings) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
        let launches: u64 = timings.phases().iter().map(|(_, s)| s.launches).sum();
        let bytes: u64 = timings
            .phases()
            .iter()
            .map(|(_, s)| s.traffic.total())
            .sum();
        let model_ms = timings.total_model_s() * 1e3;
        println!(
            "{:>12} {:>10.0} {:>12} {:>10.1} {:>12.3} {:>14.4}",
            name,
            gbps,
            launches,
            bytes as f64 / 1e6,
            model_ms,
            model_ms / launches as f64
        );
    }

    println!(
        "\nThe same computation (identical launches and traffic) maps to \
         different model times purely through the bandwidth/overhead \
         parameters — this is how EXPERIMENTS.md extrapolates the measured \
         shapes to the paper's hardware."
    );

    // Per-kernel breakdown on the default device.
    let dev = Device::default();
    let cfg = FactorConfig::paper_default(2);
    let (_, _, timings) = tridiagonal_from_matrix(&dev, &a, &cfg).unwrap();
    println!("\ntop kernels by model time (default device):");
    let mut kernels: Vec<(String, lf_kernel::KernelStats)> = timings
        .phases()
        .iter()
        .flat_map(|(_, s)| s.kernels.iter().map(|(k, v)| (k.clone(), *v)))
        .collect();
    kernels.sort_by(|a, b| b.1.model_time_s.partial_cmp(&a.1.model_time_s).unwrap());
    for (name, k) in kernels.iter().take(8) {
        println!(
            "  {:>22}: {:>3} launches, {:>7.1} MB, {:>8.4} ms model, {:>6.0} GB/s",
            name,
            k.launches,
            k.traffic.total() as f64 / 1e6,
            k.model_time_s * 1e3,
            k.model_throughput_gbps()
        );
    }
}
