//! Quickstart: extract a maximum linear forest from a small weighted graph
//! and inspect its paths, permutation and coverage.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use linear_forest::prelude::*;

fn main() {
    // A weighted graph is a sparse symmetric matrix: a_ij = ω({i, j}).
    // Here: the paper's ANISO1 model problem — a 2D grid whose horizontal
    // couplings (-1.0) are ten times stronger than the vertical ones.
    let dev = Device::default();
    let (nx, ny) = (8usize, 4usize);
    let a: Csr<f64> = grid2d(nx, ny, &ANISO1);
    println!(
        "graph: {} vertices, {} entries, mean degree {:.2}",
        a.nrows(),
        a.nnz(),
        a.mean_degree()
    );

    // Step 1: preprocess to the undirected weight matrix A' = |A| − diag.
    let aprime = prepare_undirected(&a);

    // Step 2: parallel [0,2]-factor + cycle breaking + path identification
    // + permutation, all in one call.
    let cfg = FactorConfig::paper_default(2);
    let (forest, timings) = extract_linear_forest(&dev, &aprime, &cfg).unwrap();

    println!(
        "linear forest: {} paths, {} cycles broken, weight coverage {:.3} \
         (natural-order tridiagonal would cover {:.3})",
        forest.num_paths(),
        forest.cycles.cycles,
        weight_coverage(&forest.factor, &a),
        identity_coverage(&a),
    );

    // The forest follows the strong horizontal chains: print them.
    println!("\npaths (vertex ids are y*nx + x on the {nx}x{ny} grid):");
    for path in forest.paths.to_paths() {
        let cells: Vec<String> = path
            .iter()
            .map(|&v| format!("({},{})", v % nx as u32, v / nx as u32))
            .collect();
        println!("  {}", cells.join(" - "));
    }

    // Step 3: under the forest permutation, the strong edges form the
    // sub-/superdiagonal.
    let tri = extract_tridiagonal(&dev, &a, &forest.factor, &forest.perm);
    let captured: f64 = tri.offdiag_weight();
    println!(
        "\ntridiagonal extraction captured |off-diag| weight {:.1} of {:.1} total",
        captured,
        lf_core::graph_weight(&a),
    );

    // The simulated device tracked every kernel launch of the pipeline.
    println!("\ndevice: {} kernel launches, {:.3} ms model time, {:.3} ms wall",
        timings.phases().iter().map(|(_, s)| s.launches).sum::<u64>(),
        timings.total_model_s() * 1e3,
        timings.total_wall_s() * 1e3,
    );
    for (name, stats) in timings.phases() {
        println!(
            "  {:>16}: {:>3} launches, {:>8.3} ms model",
            name,
            stats.launches,
            stats.model_time_s * 1e3
        );
    }
}
